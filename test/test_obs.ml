(* The self-profiling layer: histogram bucket arithmetic, registry
   behavior, span nesting under domain parallelism, Chrome-trace
   export validity, and the contract that observation never changes
   what is observed (golden metrics identical with tracing on/off). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ----- histogram buckets ----- *)

(* bucket_lo b <= v <= bucket_hi b  iff  bucket_index v = b *)
let qcheck_bucket_bounds =
  QCheck2.Test.make ~name:"bucket bounds characterize bucket_index" ~count:500
    QCheck2.Gen.(
      oneof
        [ int_range (-4096) 4096; map abs int;
          map (fun b -> 1 lsl abs (b mod 62)) int ])
    (fun v ->
      let b = Obs.Metrics.bucket_index v in
      b >= 0
      && b < Obs.Metrics.num_buckets
      && Obs.Metrics.bucket_lo b <= v
      && v <= Obs.Metrics.bucket_hi b)

(* Both endpoints of every bucket map back to that bucket, and the
   buckets tile the int range without overlap. *)
let test_bucket_endpoints () =
  for b = 0 to Obs.Metrics.num_buckets - 1 do
    check_int "lo endpoint" b (Obs.Metrics.bucket_index (Obs.Metrics.bucket_lo b));
    check_int "hi endpoint" b (Obs.Metrics.bucket_index (Obs.Metrics.bucket_hi b));
    if b > 0 then
      check_int "buckets are adjacent"
        (Obs.Metrics.bucket_hi (b - 1) + 1)
        (Obs.Metrics.bucket_lo b)
  done

let test_histogram_aggregates () =
  let h = Obs.Metrics.histogram "test.obs.hist" in
  let values = [ 0; 1; 1; 3; 100; 7; 65_536; -5 ] in
  List.iter (Obs.Metrics.observe h) values;
  let s =
    match List.assoc "test.obs.hist" (Obs.Metrics.snapshot ()) with
    | Obs.Metrics.Histogram s -> s
    | _ -> Alcotest.fail "test.obs.hist is not a histogram"
  in
  check_int "count" (List.length values) s.count;
  check_int "sum" (List.fold_left ( + ) 0 values) s.sum;
  check_int "max" 65_536 s.max_value;
  check_int "bucket of 1 holds both 1s"
    2
    (List.assoc (Obs.Metrics.bucket_index 1) s.filled);
  check_int "v<=0 shares bucket 0" 2 (List.assoc 0 s.filled)

(* ----- registry ----- *)

let test_registry () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.add c 41;
  Obs.Metrics.incr c;
  check_int "counter accumulates" 42 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c';
  check_int "same name interns to same cell" 43 (Obs.Metrics.counter_value c);
  Obs.Metrics.register_probe "test.obs.probe" (fun () -> 2.5);
  (match List.assoc "test.obs.probe" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Gauge v -> Alcotest.(check (float 0.)) "probe polled" 2.5 v
  | _ -> Alcotest.fail "probe missing from snapshot");
  (* names are kind-stable *)
  check_bool "kind mismatch rejected" true
    (match Obs.Metrics.gauge "test.obs.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* snapshot is sorted by name *)
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  check_bool "snapshot sorted" true (List.sort String.compare names = names)

(* ----- spans under domain parallelism ----- *)

(* Walk a parsed Chrome trace and check per-tid stack discipline:
   every E matches the innermost open B of its tid, and nothing stays
   open.  Returns the number of B/E pairs seen. *)
let check_chrome_pairs json =
  let events =
    match Obs.Jsonv.to_list json with
    | Some l -> l
    | None -> Alcotest.fail "trace is not a JSON array"
  in
  let str e k = Option.bind (Obs.Jsonv.member k e) Obs.Jsonv.to_string_opt in
  let num e k = Option.bind (Obs.Jsonv.member k e) Obs.Jsonv.to_float_opt in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let pairs = ref 0 in
  List.iter
    (fun e ->
      let tid = int_of_float (Option.value ~default:(-1.) (num e "tid")) in
      let name = Option.value ~default:"?" (str e "name") in
      match str e "ph" with
      | Some "B" ->
        let st = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
        Hashtbl.replace stacks tid (name :: st)
      | Some "E" -> (
        match Hashtbl.find_opt stacks tid with
        | Some (top :: rest) ->
          Alcotest.(check string) "E closes innermost B" top name;
          incr pairs;
          Hashtbl.replace stacks tid rest
        | _ -> Alcotest.fail (Printf.sprintf "unmatched E %S on tid %d" name tid))
      | Some ("C" | "i" | "M") -> ()
      | ph ->
        Alcotest.fail
          (Printf.sprintf "unknown phase %S" (Option.value ~default:"" ph)))
    events;
  Hashtbl.iter
    (fun tid st ->
      if st <> [] then
        Alcotest.fail (Printf.sprintf "tid %d left %d spans open" tid (List.length st)))
    stacks;
  !pairs

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Trace.enable ();
  Fun.protect ~finally:(fun () -> Obs.Trace.disable ()) f

let test_span_nesting_parallel () =
  with_tracing @@ fun () ->
  let items = List.init 16 Fun.id in
  let out =
    Pool.map ~domains:4
      (fun i ->
        Obs.Trace.with_span ~cat:"test" "outer" (fun () ->
            Obs.Trace.with_span ~cat:"test" "inner" (fun () ->
                Obs.Trace.counter "test.progress" (float_of_int i);
                i * i)))
      items
  in
  Alcotest.(check (list int)) "map result unchanged" (List.map (fun i -> i * i) items) out;
  let json =
    match Obs.Jsonv.parse (Obs.Trace.export_chrome ()) with
    | Ok j -> j
    | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  in
  let pairs = check_chrome_pairs json in
  (* pool.task > outer > inner: three nested spans per item *)
  check_int "three span pairs per item" (3 * List.length items) pairs;
  (* the text tree renders without raising and mentions both spans *)
  let text = Obs.Trace.to_text () in
  check_bool "text tree has outer" true
    (String.length text > 0 && contains text "outer" && contains text "inner")

(* spans survive exceptions: the E is still recorded *)
let test_span_exception_safety () =
  with_tracing @@ fun () ->
  (try
     Obs.Trace.with_span "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  let json =
    match Obs.Jsonv.parse (Obs.Trace.export_chrome ()) with
    | Ok j -> j
    | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  in
  check_int "B/E pair despite exception" 1 (check_chrome_pairs json)

(* truncation: buffers stop recording at capacity but never break B/E
   matching *)
let test_capacity_truncation () =
  Fun.protect ~finally:(fun () -> Obs.Trace.set_capacity 1_000_000)
  @@ fun () ->
  Obs.Trace.set_capacity 1024;
  with_tracing @@ fun () ->
  for _ = 1 to 3000 do
    Obs.Trace.with_span "spam" Fun.id
  done;
  check_bool "events were dropped" true (Obs.Trace.dropped_count () > 0);
  let json =
    match Obs.Jsonv.parse (Obs.Trace.export_chrome ()) with
    | Ok j -> j
    | Error msg -> Alcotest.fail ("export is not valid JSON: " ^ msg)
  in
  ignore (check_chrome_pairs json)

(* ----- observation must not perturb the simulation ----- *)

let nn () = Workloads.Registry.find "nn"
let arch () = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()

type fingerprint = {
  fp_cycles : int;
  fp_rd_mean : float;
  fp_md_degree : float;
  fp_bd : int * int;
}

let fingerprint () =
  let session = Advisor.profile ~arch:(arch ()) (nn ()) in
  let rd = Advisor.reuse_distance session in
  let md = Advisor.mem_divergence session in
  let bd = Advisor.branch_divergence session in
  {
    fp_cycles = Hostrt.Host.total_kernel_cycles session.host;
    fp_rd_mean = rd.mean_finite_distance;
    fp_md_degree = md.Analysis.Mem_divergence.degree;
    fp_bd = (bd.divergent_blocks, bd.total_blocks);
  }

let test_tracing_is_invisible () =
  Obs.Trace.disable ();
  let off = fingerprint () in
  let on_ = with_tracing fingerprint in
  check_int "cycles identical" off.fp_cycles on_.fp_cycles;
  check_bool "rd mean bit-identical" true (off.fp_rd_mean = on_.fp_rd_mean);
  check_bool "md degree bit-identical" true (off.fp_md_degree = on_.fp_md_degree);
  check_bool "bd identical" true (off.fp_bd = on_.fp_bd)

(* ----- snapshot merging and percentiles (fleet aggregation) ----- *)

(* Build a histogram snapshot purely from an observation list, mirroring
   [observe]'s aggregate semantics (max over 0, mean = sum/count). *)
let hsnap values =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let b = Obs.Metrics.bucket_index v in
      Hashtbl.replace tbl b
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    values;
  let count = List.length values in
  let sum = List.fold_left ( + ) 0 values in
  {
    Obs.Metrics.count;
    sum;
    max_value = List.fold_left max 0 values;
    mean = (if count = 0 then 0. else float_of_int sum /. float_of_int count);
    filled =
      Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl [] |> List.sort compare;
  }

(* Snapshots of counters and histograms only: gauges are last-write-wins
   by design, so they are deliberately outside the commutativity law. *)
let snap_gen =
  QCheck2.Gen.(
    let values = list_size (int_range 0 8) (int_range 0 100_000) in
    let entry =
      oneof
        [ map2
            (fun i n ->
              (Printf.sprintf "c%d" (abs i mod 4),
               Obs.Metrics.Counter (abs n mod 1000)))
            int int;
          map2
            (fun i vs ->
              (Printf.sprintf "h%d" (abs i mod 3),
               Obs.Metrics.Histogram (hsnap vs)))
            int values ]
    in
    list_size (int_range 0 6) entry)

let qcheck_merge_commutative =
  QCheck2.Test.make ~name:"snapshot merge is commutative" ~count:200
    QCheck2.Gen.(pair snap_gen snap_gen)
    (fun (a, b) ->
      Obs.Metrics.merge_snapshots [ a; b ] = Obs.Metrics.merge_snapshots [ b; a ])

let qcheck_merge_associative =
  QCheck2.Test.make ~name:"snapshot merge is associative" ~count:200
    QCheck2.Gen.(triple snap_gen snap_gen snap_gen)
    (fun (a, b, c) ->
      let m = Obs.Metrics.merge_snapshots in
      m [ m [ a; b ]; c ] = m [ a; m [ b; c ] ]
      && m [ a; b; c ] = m [ m [ a; b ]; c ])

let qcheck_merge_is_concat =
  QCheck2.Test.make
    ~name:"merged histogram = histogram of concatenated observations"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 20) (int_range 0 1_000_000))
        (list_size (int_range 0 20) (int_range 0 1_000_000)))
    (fun (xs, ys) ->
      Obs.Metrics.merge_histogram_snapshots (hsnap xs) (hsnap ys)
      = hsnap (xs @ ys))

let qcheck_percentile_monotone =
  QCheck2.Test.make ~name:"percentiles are monotone in q and bounded by max"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50) (int_range 0 1_000_000))
        (list_size (int_range 2 6) (int_range 0 1000)))
    (fun (vs, qraw) ->
      let h = hsnap vs in
      let qs = List.sort compare (List.map (fun n -> float_of_int n /. 1000.) qraw) in
      let ps = List.map (Obs.Metrics.percentile h) qs in
      let rec mono = function
        | a :: (b :: _ as r) -> a <= b && mono r
        | _ -> true
      in
      mono ps && List.for_all (fun p -> p <= h.Obs.Metrics.max_value) ps)

let test_merge_units () =
  let m = Obs.Metrics.merge_snapshots in
  check_bool "counters sum" true
    (m [ [ ("a", Obs.Metrics.Counter 2) ]; [ ("a", Obs.Metrics.Counter 3) ] ]
    = [ ("a", Obs.Metrics.Counter 5) ]);
  check_bool "gauges last-write" true
    (m [ [ ("g", Obs.Metrics.Gauge 1.) ]; [ ("g", Obs.Metrics.Gauge 7.) ] ]
    = [ ("g", Obs.Metrics.Gauge 7.) ]);
  check_bool "disjoint names union, sorted" true
    (m [ [ ("b", Obs.Metrics.Counter 1) ]; [ ("a", Obs.Metrics.Counter 1) ] ]
    = [ ("a", Obs.Metrics.Counter 1); ("b", Obs.Metrics.Counter 1) ]);
  let h = hsnap [ 1; 1; 3; 100 ] in
  check_int "p100 clamps to observed max" 100 (Obs.Metrics.percentile h 1.0);
  check_int "empty histogram percentile" 0 (Obs.Metrics.percentile (hsnap []) 0.99)

(* ----- Prometheus text exposition ----- *)

let prom_line_ok line =
  line = ""
  || line.[0] = '#'
  || (match String.rindex_opt line ' ' with
     | None -> false
     | Some i ->
       float_of_string_opt
         (String.sub line (i + 1) (String.length line - i - 1))
       <> None)

let test_prometheus_exposition () =
  let snap =
    [ ("t8.ctr", Obs.Metrics.Counter 5);
      ("t8.gauge", Obs.Metrics.Gauge 2.5);
      ("t8.lat.ns", Obs.Metrics.Histogram (hsnap [ 1; 1; 3; 100 ])) ]
  in
  let text = Obs.Metrics.to_prometheus ~snap () in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun l ->
      check_bool (Printf.sprintf "parses: %s" l) true (prom_line_ok l))
    lines;
  check_bool "counter line" true (contains text "t8_ctr 5");
  check_bool "counter type" true (contains text "# TYPE t8_ctr counter");
  check_bool "gauge line" true (contains text "t8_gauge 2.5");
  check_bool "histogram count" true (contains text "t8_lat_ns_count 4");
  check_bool "histogram sum" true (contains text "t8_lat_ns_sum 105");
  check_bool "+Inf bucket" true (contains text "le=\"+Inf\"} 4");
  (* cumulative buckets are non-decreasing *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if contains l "t8_lat_ns_bucket" then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  check_bool "at least two buckets" true (List.length bucket_counts >= 2);
  let rec mono = function
    | a :: (b :: _ as r) -> a <= b && mono r
    | _ -> true
  in
  check_bool "cumulative buckets monotone" true (mono bucket_counts)

(* ----- structured log rendering ----- *)

let test_log_render_formats () =
  let text =
    Obs.Log.render ~format:Obs.Log.Text ~t:1.5 ~lvl:Obs.Log.Warn
      ~component:"gpusim" ~msg:"spill" ~kv:[ ("op", "profile") ]
  in
  check_bool "text has level and component" true
    (contains text "warn" && contains text "gpusim: spill");
  check_bool "text kv suffix" true (contains text " op=profile");
  let json =
    Obs.Log.render ~format:Obs.Log.Json ~t:1.5 ~lvl:Obs.Log.Error
      ~component:"serve" ~msg:"bad \"quote\"" ~kv:[ ("shard", "2") ]
  in
  match Obs.Jsonv.parse json with
  | Error m -> Alcotest.failf "json log line does not parse: %s (%s)" m json
  | Ok v ->
    let str k = Option.bind (Obs.Jsonv.member k v) Obs.Jsonv.to_string_opt in
    Alcotest.(check (option string)) "level" (Some "error") (str "level");
    Alcotest.(check (option string)) "component" (Some "serve") (str "component");
    Alcotest.(check (option string)) "msg escaped" (Some "bad \"quote\"") (str "msg");
    Alcotest.(check (option string)) "kv field" (Some "2") (str "shard");
    check_bool "format_of_string" true
      (Obs.Log.format_of_string "JSON" = Ok Obs.Log.Json
      && Obs.Log.format_of_string "text" = Ok Obs.Log.Text
      && Result.is_error (Obs.Log.format_of_string "yaml"))

(* ----- trace context propagation and the span-record sink ----- *)

let test_trace_context_sink () =
  let recs = ref [] in
  let m = Mutex.create () in
  Obs.Trace.set_sink (fun r -> Mutex.protect m (fun () -> recs := r :: !recs));
  Fun.protect ~finally:(fun () -> Obs.Trace.clear_sink ())
  @@ fun () ->
  Obs.Trace.with_context ~trace_id:"t-test" (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "inner" Fun.id));
  let find name =
    match
      List.find_opt (fun r -> r.Obs.Trace.sr_name = name) !recs
    with
    | Some r -> r
    | None -> Alcotest.failf "no span record named %S" name
  in
  check_int "two span records" 2 (List.length !recs);
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check string) "trace id stamped" "t-test" outer.Obs.Trace.sr_trace;
  Alcotest.(check string) "same trace" "t-test" inner.Obs.Trace.sr_trace;
  Alcotest.(check string) "child's parent is enclosing span" "outer"
    inner.Obs.Trace.sr_parent;
  check_bool "durations measured" true
    (outer.Obs.Trace.sr_dur_ns >= inner.Obs.Trace.sr_dur_ns);
  (* no ambient context -> the sink records nothing *)
  Obs.Trace.with_span "quiet" Fun.id;
  check_int "span outside a context is not recorded" 2 (List.length !recs);
  check_bool "context is restored after with_context" true
    (Obs.Trace.current_trace_id () = None)

(* Worker domains spawned inside a context inherit it (Pool.map hands
   the caller's context to its workers). *)
let test_trace_context_crosses_pool () =
  let recs = ref [] in
  let m = Mutex.create () in
  Obs.Trace.set_sink (fun r -> Mutex.protect m (fun () -> recs := r :: !recs));
  Fun.protect ~finally:(fun () -> Obs.Trace.clear_sink ())
  @@ fun () ->
  Obs.Trace.with_context ~trace_id:"t-pool" (fun () ->
      ignore
        (Pool.map ~domains:3
           (fun i -> Obs.Trace.with_span "task" (fun () -> i))
           (List.init 8 Fun.id)));
  let tasks = List.filter (fun r -> r.Obs.Trace.sr_name = "task") !recs in
  check_int "every pooled task recorded" 8 (List.length tasks);
  check_bool "all carry the caller's trace id" true
    (List.for_all (fun r -> r.Obs.Trace.sr_trace = "t-pool") tasks)

(* ----- merging per-process span files into one Chrome trace ----- *)

let test_tracemerge () =
  let dir = Filename.temp_file "advisor-spans" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write name lines =
    let oc = open_out (Filename.concat dir name) in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  write "spans-100.ndjson"
    [ {|{"trace":"t-1","parent":"","name":"fleet:forward","cat":"fleet","ts":1000,"dur":500,"pid":100,"dom":0,"proc":"supervisor"}|};
      "this line is not json" ];
  write "spans-200.ndjson"
    [ {|{"trace":"t-1","parent":"fleet:forward","name":"serve:intake","ts":1200,"dur":200,"pid":200,"dom":0,"proc":"shard-0"}|};
      {|{"trace":"t-1","parent":"serve:intake","name":"serve:profile","ts":1300,"dur":80,"pid":200,"dom":1,"proc":"shard-0/worker"}|};
      {|{"trace":"t-other","parent":"","name":"noise","ts":1,"dur":1,"pid":200,"dom":0,"proc":"shard-0"}|} ];
  let m = Obs.Tracemerge.merge ~trace_id:"t-1" ~dir () in
  check_int "files read" 2 m.Obs.Tracemerge.files;
  check_int "spans kept" 3 m.Obs.Tracemerge.records;
  check_int "malformed + filtered skipped" 2 m.Obs.Tracemerge.skipped;
  Alcotest.(check (list string)) "one process group per role"
    [ "shard-0"; "shard-0/worker"; "supervisor" ]
    m.Obs.Tracemerge.procs;
  (match Obs.Jsonv.parse m.Obs.Tracemerge.json with
  | Error e -> Alcotest.failf "merged trace is not valid JSON: %s" e
  | Ok v ->
    let events =
      match Obs.Jsonv.to_list v with
      | Some l -> l
      | None -> Alcotest.fail "merged trace is not an array"
    in
    let ph e =
      Option.bind (Obs.Jsonv.member "ph" e) Obs.Jsonv.to_string_opt
    in
    let xs = List.filter (fun e -> ph e = Some "X") events in
    let ms = List.filter (fun e -> ph e = Some "M") events in
    check_int "one X event per span" 3 (List.length xs);
    check_bool "metadata names every process" true (List.length ms >= 3);
    check_bool "spans carry the trace id" true
      (List.for_all
         (fun e ->
           match Obs.Jsonv.member "args" e with
           | Some a ->
             Option.bind (Obs.Jsonv.member "trace_id" a)
               Obs.Jsonv.to_string_opt
             = Some "t-1"
           | None -> false)
         xs));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          QCheck_alcotest.to_alcotest qcheck_bucket_bounds;
          Alcotest.test_case "bucket endpoints" `Quick test_bucket_endpoints;
          Alcotest.test_case "histogram aggregates" `Quick test_histogram_aggregates;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting across domains" `Quick
            test_span_nesting_parallel;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "capacity truncation" `Quick test_capacity_truncation;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest qcheck_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_merge_associative;
          QCheck_alcotest.to_alcotest qcheck_merge_is_concat;
          QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
          Alcotest.test_case "merge unit cases" `Quick test_merge_units;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus text parses" `Quick
            test_prometheus_exposition;
        ] );
      ( "log",
        [
          Alcotest.test_case "text and json rendering" `Quick
            test_log_render_formats;
        ] );
      ( "distributed-trace",
        [
          Alcotest.test_case "context + sink span records" `Quick
            test_trace_context_sink;
          Alcotest.test_case "context crosses pool domains" `Quick
            test_trace_context_crosses_pool;
          Alcotest.test_case "trace-merge joins processes" `Quick
            test_tracemerge;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "tracing on = tracing off" `Quick
            test_tracing_is_invisible;
        ] );
    ]
