(* Tests for the profiler: CCT interning, shadow-stack call paths, and
   data-centric attribution. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- CCT ----- *)

let test_cct_interning () =
  let t = Profiler.Cct.create () in
  let root = Profiler.Cct.root t ~key:0 in
  let a = Profiler.Cct.child t root ~callsite:1 in
  let a' = Profiler.Cct.child t root ~callsite:1 in
  let b = Profiler.Cct.child t root ~callsite:2 in
  check_int "same path interned" a a';
  check "different callsite differs" true (a <> b);
  check_int "path of a" 1 (List.length (Profiler.Cct.path t a));
  check "path content" true (Profiler.Cct.path t a = [ 1 ])

let test_cct_nested_path () =
  let t = Profiler.Cct.create () in
  let root = Profiler.Cct.root t ~key:0 in
  let a = Profiler.Cct.child t root ~callsite:5 in
  let b = Profiler.Cct.child t a ~callsite:9 in
  check "nested path root-to-leaf" true (Profiler.Cct.path t b = [ 5; 9 ]);
  check_int "parent" a (Profiler.Cct.parent t b)

let test_cct_roots_per_kernel () =
  let t = Profiler.Cct.create () in
  let r0 = Profiler.Cct.root t ~key:0 in
  let r1 = Profiler.Cct.root t ~key:1 in
  let r0' = Profiler.Cct.root t ~key:0 in
  check "distinct kernels distinct roots" true (r0 <> r1);
  check_int "same kernel same root" r0 r0';
  check "root path empty" true (Profiler.Cct.path t r1 = [])

(* ----- end-to-end profile of a kernel with a device call ----- *)

let profile_src =
  {|
__device__ float scale(float* a, int i) {
  return a[i] * 2.0f;
}
__global__ void k(float* a, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    a[tid] = scale(a, tid);
  }
}
|}

let make_session () =
  let m = Minicuda.Frontend.compile ~file:"p.cu" profile_src in
  let r = Passes.Instrument.run m in
  let prog = Ptx.Codegen.gen_module m in
  let profiler = Profiler.Profile.create ~manifest:r.manifest () in
  let host =
    Hostrt.Host.create ~profiler ~arch:(Gpusim.Arch.kepler_k40c ()) ~prog ()
  in
  let open Hostrt.Host in
  in_function host ~func:"main" ~file:"p.cu" ~line:1 (fun () ->
      let h_a = malloc host ~label:"h_a" (4 * 64) in
      Gpusim.Devmem.write_f32_array (host_mem host) h_a
        (Array.init 64 float_of_int);
      let d_a = cuda_malloc host ~label:"d_a" (4 * 64) in
      memcpy_h2d host ~dst:d_a ~src:h_a ~bytes:(4 * 64);
      in_function host ~func:"launcher" ~file:"p.cu" ~line:20 (fun () ->
          ignore
            (launch_kernel host ~kernel:"k" ~grid:(2, 1) ~block:(32, 1)
               ~args:[ iarg d_a; iarg 64 ]));
      memcpy_d2h host ~dst:h_a ~src:d_a ~bytes:(4 * 64));
  (profiler, host)

let test_instance_host_path () =
  let profiler, _ = make_session () in
  match Profiler.Profile.instances profiler with
  | [ i ] ->
    check_int "host path depth" 2 (List.length i.host_path);
    check "main first" true
      ((List.hd i.host_path).Profiler.Records.frame_func = "main")
  | _ -> Alcotest.fail "expected one instance"

let test_device_call_path_attribution () =
  let profiler, _ = make_session () in
  let i = List.hd (Profiler.Profile.instances profiler) in
  (* the load inside scale() must be attributed to a context whose path
     goes through the callsite in k *)
  let in_scale =
    List.filter
      (fun ((m : Gpusim.Hookev.mem), node) ->
        ignore m;
        Profiler.Profile.device_path profiler i node |> List.map fst
        |> List.mem "scale")
      (Profiler.Profile.mem_events i)
  in
  check "some accesses attributed to scale()" true (List.length in_scale > 0)

let test_mem_events_recorded_in_order () =
  let profiler, _ = make_session () in
  let i = List.hd (Profiler.Profile.instances profiler) in
  check "events recorded" true (i.mem_count > 0);
  check_int "list matches count" i.mem_count
    (List.length (Profiler.Profile.mem_events i))

let test_bb_stats_present () =
  let profiler, _ = make_session () in
  let i = List.hd (Profiler.Profile.instances profiler) in
  check "blocks recorded" true (Hashtbl.length i.bb_stats > 0)

(* ----- data-centric ----- *)

let test_data_centric_mapping () =
  let profiler, _ = make_session () in
  let allocs = Profiler.Profile.allocations profiler in
  check_int "two allocations" 2 (List.length allocs);
  let d_a =
    List.find (fun (a : Profiler.Records.alloc) -> a.label = "d_a") allocs
  in
  check "device side" true (d_a.side = Profiler.Records.Device_side);
  (* an address inside d_a maps back to it *)
  (match Profiler.Data_centric.find_device_alloc profiler (d_a.base + 16) with
  | Some a -> Alcotest.(check string) "found by address" "d_a" a.label
  | None -> Alcotest.fail "address not attributed");
  (* flow: h_a --H2D--> d_a --D2H--> h_a *)
  let flow = Profiler.Data_centric.flow_of profiler d_a in
  (match flow.host_object with
  | Some h -> Alcotest.(check string) "host counterpart" "h_a" h.label
  | None -> Alcotest.fail "no host counterpart");
  check_int "one inbound transfer" 1 (List.length flow.inbound);
  check_int "one outbound transfer" 1 (List.length flow.outbound)

let test_transfers_have_paths () =
  let profiler, _ = make_session () in
  List.iter
    (fun (t : Profiler.Records.transfer) ->
      check "transfer path nonempty" true (t.transfer_path <> []))
    (Profiler.Profile.transfers profiler)

(* ----- packed trace buffer ----- *)

let gen_mem_event =
  QCheck2.Gen.(
    let* kernel = oneofl [ "k"; "scale"; "Kernel" ] in
    let* cta = int_range 0 15 in
    let* warp = int_range 0 7 in
    let* file = oneofl [ "a.cu"; "b.cu" ] in
    let* line = int_range 1 500 in
    let* col = int_range 0 40 in
    let* bits = oneofl [ 8; 32; 64 ] in
    let* kind = int_range 0 2 in
    let* node = int_range 0 100 in
    let* accesses =
      list_size (int_range 0 32) (pair (int_range 0 31) (int_range 0 1_000_000))
    in
    return
      ( { Gpusim.Hookev.kernel; cta; warp;
          loc = { Bitc.Loc.file; line; col };
          bits; kind;
          accesses = Array.of_list accesses },
        node ))

(* The packed buffer is lossless: encode then decode is the identity,
   and the zero-copy column accessors agree with the decoded records. *)
let qcheck_tracebuf_roundtrip =
  QCheck2.Test.make ~name:"tracebuf encode/decode roundtrip" ~count:100
    QCheck2.Gen.(list_size (int_range 0 50) gen_mem_event)
    (fun events ->
      let tr = Profiler.Tracebuf.of_events events in
      let decoded = Profiler.Tracebuf.to_events tr in
      assert (Profiler.Tracebuf.length tr = List.length events);
      assert (decoded = events);
      List.iteri
        (fun i ((m : Gpusim.Hookev.mem), node) ->
          assert (Profiler.Tracebuf.kernel tr i = m.kernel);
          assert (Profiler.Tracebuf.cta tr i = m.cta);
          assert (Profiler.Tracebuf.warp tr i = m.warp);
          assert (Profiler.Tracebuf.loc tr i = m.loc);
          assert (Profiler.Tracebuf.bits tr i = m.bits);
          assert (Profiler.Tracebuf.kind tr i = m.kind);
          assert (Profiler.Tracebuf.node tr i = node);
          assert (Profiler.Tracebuf.acc_len tr i = Array.length m.accesses);
          Array.iteri
            (fun j (lane, addr) ->
              assert (Profiler.Tracebuf.lane tr i j = lane);
              assert (Profiler.Tracebuf.addr tr i j = addr))
            m.accesses)
        events;
      true)

(* Interned locations stay stable under repeated pushes of the same
   site, and the arena view matches the per-lane accessor. *)
let qcheck_tracebuf_arena_view =
  QCheck2.Test.make ~name:"tracebuf arena slice = addr accessor" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) gen_mem_event)
    (fun events ->
      let tr = Profiler.Tracebuf.of_events events in
      let arena = Profiler.Tracebuf.addr_arena tr in
      Profiler.Tracebuf.iter tr (fun i ->
          let off = Profiler.Tracebuf.acc_off tr i in
          for j = 0 to Profiler.Tracebuf.acc_len tr i - 1 do
            assert (arena.(off + j) = Profiler.Tracebuf.addr tr i j)
          done;
          assert (
            Profiler.Tracebuf.loc_of_id tr (Profiler.Tracebuf.loc_id tr i)
            = Profiler.Tracebuf.loc tr i));
      true)

let test_statistics_merge_instances () =
  (* two launches from the same host context merge into one summary *)
  let m = Minicuda.Frontend.compile ~file:"p.cu" profile_src in
  let r = Passes.Instrument.run m in
  let prog = Ptx.Codegen.gen_module m in
  let profiler = Profiler.Profile.create ~manifest:r.manifest () in
  let host =
    Hostrt.Host.create ~profiler ~arch:(Gpusim.Arch.kepler_k40c ()) ~prog ()
  in
  let open Hostrt.Host in
  in_function host ~func:"main" ~file:"p.cu" ~line:1 (fun () ->
      let d_a = cuda_malloc host ~label:"d_a" (4 * 64) in
      for _ = 1 to 3 do
        ignore
          (launch_kernel host ~kernel:"k" ~grid:(2, 1) ~block:(32, 1)
             ~args:[ iarg d_a; iarg 64 ])
      done);
  let groups =
    Analysis.Statistics.by_context
      (Profiler.Profile.instances profiler)
      ~metric:Analysis.Statistics.cycles
  in
  check_int "one context group" 1 (List.length groups);
  let _, s = List.hd groups in
  check_int "three instances merged" 3 s.count;
  check "mean within min..max" true (s.mean >= s.min && s.mean <= s.max)

let () =
  Alcotest.run "profiler"
    [
      ( "cct",
        [ Alcotest.test_case "interning" `Quick test_cct_interning;
          Alcotest.test_case "nested paths" `Quick test_cct_nested_path;
          Alcotest.test_case "roots" `Quick test_cct_roots_per_kernel ] );
      ( "code-centric",
        [ Alcotest.test_case "host path" `Quick test_instance_host_path;
          Alcotest.test_case "device call attribution" `Quick test_device_call_path_attribution;
          Alcotest.test_case "mem events" `Quick test_mem_events_recorded_in_order;
          Alcotest.test_case "bb stats" `Quick test_bb_stats_present ] );
      ( "data-centric",
        [ Alcotest.test_case "address mapping + flow" `Quick test_data_centric_mapping;
          Alcotest.test_case "transfer paths" `Quick test_transfers_have_paths ] );
      ( "tracebuf",
        [ QCheck_alcotest.to_alcotest qcheck_tracebuf_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_tracebuf_arena_view ] );
      ( "statistics",
        [ Alcotest.test_case "merge by context" `Quick test_statistics_merge_instances ] );
    ]
