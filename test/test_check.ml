(* Tests for the `advisor check` correctness subsystem:
   - the static pass and the dynamic race detector report nothing on the
     ten clean Table-2 applications;
   - each seeded-bug variant is caught by the intended half of the
     checker, with a usable source location on every finding;
   - the per-warp runaway guard honours the configurable limit and
     still reports through the leveled logger when it trips;
   - the PR 3 typechecker shadowing warning fires exactly once per
     compile, observed through the Obs per-level log counters. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let arch = Gpusim.Arch.kepler_k40c ~num_sms:5 ~l1_kb:16 ()

let loc_ok (loc : Bitc.Loc.t) ~file =
  loc.Bitc.Loc.file = file && loc.Bitc.Loc.line > 0

(* ----- clean workloads stay clean ----- *)

let test_static_clean () =
  List.iter
    (fun (w : Workloads.Common.t) ->
      let m = Workloads.Common.compile w in
      let findings = Passes.Check_static.run m in
      check_int (w.name ^ " static findings") 0 (List.length findings))
    Workloads.Registry.all

let test_check_clean () =
  List.iter
    (fun (w : Workloads.Common.t) ->
      let r = Advisor.check ~scale:1 ~arch w in
      check_int (w.name ^ " check errors") 0 (Advisor.check_error_count r);
      check_int
        (w.name ^ " races")
        0
        (List.length r.races.Analysis.Race.races))
    Workloads.Registry.all

(* ----- seeded bugs are caught ----- *)

let seeded name = Workloads.Registry.find name

let test_hotspot_racy () =
  let r = Advisor.check ~arch (seeded "hotspot_racy") in
  check "errors reported" true (Advisor.check_error_count r > 0);
  let races = r.races.Analysis.Race.races in
  check "dynamic races found" true (races <> []);
  (* the planted bug is purely dynamic *)
  check_int "no static findings" 0 (List.length r.static_findings);
  List.iter
    (fun (race : Analysis.Race.race) ->
      check "race site A has file:line" true
        (loc_ok race.a_loc ~file:"hotspot_racy.cu");
      check "race site B has file:line" true
        (loc_ok race.b_loc ~file:"hotspot_racy.cu");
      (* CCT attribution: the device path starts at the kernel *)
      check "race path rooted at kernel" true
        (match race.a_path with
        | (fn, _) :: _ -> fn = "calculate_temp_racy"
        | [] -> false))
    races

let test_reduce_missing_sync () =
  let r = Advisor.check ~arch (seeded "reduce_missing_sync") in
  check "errors reported" true (Advisor.check_error_count r > 0);
  let races = r.races.Analysis.Race.races in
  check "dynamic races found" true (races <> []);
  check_int "no static findings" 0 (List.length r.static_findings);
  (* the conflict is the in-loop read-vs-write of buf *)
  check "a read-write race" true
    (List.exists
       (fun (race : Analysis.Race.race) -> race.race_kind = "read-write")
       races);
  List.iter
    (fun (race : Analysis.Race.race) ->
      check "race sites have file:line" true
        (loc_ok race.a_loc ~file:"reduce_missing_sync.cu"
        && loc_ok race.b_loc ~file:"reduce_missing_sync.cu"))
    races

let test_stencil_divergent_sync () =
  let r = Advisor.check ~arch (seeded "stencil_divergent_sync") in
  check "errors reported" true (Advisor.check_error_count r > 0);
  (* the planted bug is the barrier under `if (tx < 32)`: warp epochs
     diverge, so the dynamic detector is blind to it by design and the
     static pass must carry the catch *)
  check "divergent-barrier flagged" true
    (List.exists
       (fun (f : Passes.Check_static.finding) ->
         f.rule = "divergent-barrier"
         && loc_ok f.loc ~file:"stencil_divergent_sync.cu"
         && loc_ok f.related ~file:"stencil_divergent_sync.cu")
       r.static_findings)

let test_shared_oob () =
  let r = Advisor.check ~arch (seeded "shared_oob") in
  check "errors reported" true (Advisor.check_error_count r > 0);
  check "oob-shared-gep flagged" true
    (List.exists
       (fun (f : Passes.Check_static.finding) ->
         f.rule = "oob-shared-gep" && loc_ok f.loc ~file:"shared_oob.cu")
       r.static_findings);
  (* the guarded access never executes, so the run itself stays clean *)
  check_int "no dynamic races" 0 (List.length r.races.Analysis.Race.races)

let test_check_report_json () =
  let r = Advisor.check ~arch (seeded "shared_oob") in
  let json = Analysis.Json.to_string (Advisor.check_report_json r) in
  check "report is valid JSON" true (Result.is_ok (Obs.Jsonv.parse json));
  check "report names the app" true
    (let s = "shared_oob" in
     let rec contains i =
       i + String.length s <= String.length json
       && (String.sub json i (String.length s) = s || contains (i + 1))
     in
     contains 0)

(* ----- static pass unit tests on handwritten kernels ----- *)

let compile_src src = Minicuda.Frontend.compile ~file:"unit.cu" src

let test_static_units () =
  (* sync after the join of a divergent branch: safe *)
  let clean =
    compile_src
      {|
__global__ void k(float* a, int n) {
  __shared__ float buf[64];
  int tx = threadIdx.x;
  if (tx < 32) {
    buf[tx] = 1.0f;
  } else {
    buf[tx] = 2.0f;
  }
  __syncthreads();
  a[tx] = buf[tx];
}
|}
  in
  check_int "post-dominating sync is clean" 0
    (List.length (Passes.Check_static.run clean));
  (* sync under a branch on a uniform value: safe *)
  let uniform =
    compile_src
      {|
__global__ void k(float* a, int n) {
  __shared__ float buf[64];
  int tx = threadIdx.x;
  buf[tx] = 1.0f;
  if (n > 4) {
    __syncthreads();
    a[tx] = buf[63 - tx];
  }
}
|}
  in
  check_int "uniform-branch sync is clean" 0
    (List.length (Passes.Check_static.run uniform));
  (* taint through memory: MiniCUDA scalars lower to allocas, so a
     thread id stored into a local and reloaded must stay divergent *)
  let through_mem =
    compile_src
      {|
__global__ void k(float* a, int n) {
  __shared__ float buf[64];
  int saved = threadIdx.x;
  int tx = threadIdx.x;
  buf[tx] = 1.0f;
  int reloaded = saved;
  if (reloaded < 32) {
    __syncthreads();
    a[tx] = buf[63 - tx];
  }
}
|}
  in
  check "alloca-laundered divergence is still flagged" true
    (List.exists
       (fun (f : Passes.Check_static.finding) -> f.rule = "divergent-barrier")
       (Passes.Check_static.run through_mem));
  (* a barrier inside a uniform loop, after a divergent if/join: the
     loop back-edge must not count as divergence (regression for the
     backprop false positive) *)
  let loop_after_join =
    compile_src
      {|
__global__ void k(float* a, int n) {
  __shared__ float buf[64];
  int tx = threadIdx.x;
  if (tx == 0) {
    buf[0] = 1.0f;
  }
  __syncthreads();
  for (int i = 0; i < n; i = i + 1) {
    buf[tx] = buf[tx] + 1.0f;
    __syncthreads();
  }
  a[tx] = buf[tx];
}
|}
  in
  check_int "uniform loop after divergent join is clean" 0
    (List.length (Passes.Check_static.run loop_after_join));
  (* constant out-of-bounds index on a per-thread local array; MiniCUDA
     has no local-array syntax, so build the Bitc directly *)
  let local_oob =
    let m = Bitc.Irmod.create "unit" in
    let f =
      Bitc.Func.create ~name:"k"
        ~params:[ ("a", Bitc.Types.Ptr (Bitc.Types.F32, Bitc.Types.Global)) ]
        ~ret:Bitc.Types.Void ~fkind:Bitc.Func.Kernel
    in
    let b = Bitc.Builder.create f in
    let scratch = Bitc.Builder.alloca b Bitc.Types.F32 4 in
    let slot = Bitc.Builder.gep b ~base:scratch ~index:(Bitc.Value.Int 7) in
    Bitc.Builder.store b ~ptr:slot ~value:(Bitc.Value.Float 1.0);
    Bitc.Builder.ret b None;
    Bitc.Irmod.add_func m f;
    m
  in
  check "local OOB flagged" true
    (List.exists
       (fun (f : Passes.Check_static.finding) -> f.rule = "oob-local-gep")
       (Passes.Check_static.run local_oob))

(* ----- configurable runaway guard ----- *)

let test_runaway_guard () =
  let errors_before =
    Obs.Metrics.counter_value (Obs.Metrics.counter "log.messages.error")
  in
  check_int "default limit" Gpusim.Gpu.default_max_warp_insts
    (Gpusim.Gpu.max_warp_insts ());
  check "rejects non-positive limits" true
    (match Gpusim.Gpu.set_max_warp_insts 0 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Fun.protect ~finally:Gpusim.Gpu.clear_max_warp_insts (fun () ->
      Gpusim.Gpu.set_max_warp_insts 50;
      check_int "override visible" 50 (Gpusim.Gpu.max_warp_insts ());
      let aborted =
        match Advisor.run_native ~arch (Workloads.Registry.find "nn") with
        | _ -> false
        | exception Gpusim.Gpu.Launch_error _ -> true
      in
      check "launch aborts under a tiny limit" true aborted);
  check_int "override cleared" Gpusim.Gpu.default_max_warp_insts
    (Gpusim.Gpu.max_warp_insts ());
  (* the abort path reports through the logger: the error-level counter
     advanced even though quiet runs print nothing *)
  let errors_after =
    Obs.Metrics.counter_value (Obs.Metrics.counter "log.messages.error")
  in
  check "abort logged at error level" true (errors_after > errors_before)

let test_runaway_env () =
  Unix.putenv "CUDAADVISOR_MAX_WARP_INSTRS" "1234";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CUDAADVISOR_MAX_WARP_INSTRS" "")
    (fun () ->
      check_int "env limit honoured" 1234 (Gpusim.Gpu.max_warp_insts ());
      (* programmatic override wins over the environment *)
      Fun.protect ~finally:Gpusim.Gpu.clear_max_warp_insts (fun () ->
          Gpusim.Gpu.set_max_warp_insts 99;
          check_int "override beats env" 99 (Gpusim.Gpu.max_warp_insts ()));
      Unix.putenv "CUDAADVISOR_MAX_WARP_INSTRS" "not-a-number";
      check_int "garbage env ignored" Gpusim.Gpu.default_max_warp_insts
        (Gpusim.Gpu.max_warp_insts ()))

(* ----- shadowing warning regression (PR 3) ----- *)

let shadowing_src =
  {|
__global__ void k(float* a, int n) {
  int i = threadIdx.x;
  if (i < n) {
    float i = 2.0f;
    a[0] = i;
  }
}
|}

let test_shadowing_warning () =
  let warn_counter = Obs.Metrics.counter "log.messages.warn" in
  let frontend_warnings = Obs.Metrics.counter "frontend.warnings" in
  let before = Obs.Metrics.counter_value warn_counter in
  let fw_before = Obs.Metrics.counter_value frontend_warnings in
  ignore (Minicuda.Frontend.compile ~file:"shadow.cu" shadowing_src);
  check_int "warning logged exactly once"
    (before + 1)
    (Obs.Metrics.counter_value warn_counter);
  check_int "frontend warning counted exactly once"
    (fw_before + 1)
    (Obs.Metrics.counter_value frontend_warnings);
  (* a clean compile adds none *)
  ignore
    (Minicuda.Frontend.compile ~file:"noshadow.cu"
       {|
__global__ void k(float* a, int n) {
  int i = threadIdx.x;
  if (i < n) {
    a[i] = 1.0f;
  }
}
|});
  check_int "clean compile adds no warnings"
    (before + 1)
    (Obs.Metrics.counter_value warn_counter)

let () =
  Alcotest.run "check"
    [
      ( "static",
        [ Alcotest.test_case "clean on ten apps" `Quick test_static_clean;
          Alcotest.test_case "unit kernels" `Quick test_static_units ] );
      ( "seeded",
        [ Alcotest.test_case "hotspot_racy" `Slow test_hotspot_racy;
          Alcotest.test_case "reduce_missing_sync" `Slow
            test_reduce_missing_sync;
          Alcotest.test_case "stencil_divergent_sync" `Slow
            test_stencil_divergent_sync;
          Alcotest.test_case "shared_oob" `Slow test_shared_oob;
          Alcotest.test_case "report json" `Slow test_check_report_json ] );
      ( "clean", [ Alcotest.test_case "check ten apps" `Slow test_check_clean ] );
      ( "guard",
        [ Alcotest.test_case "runaway limit" `Slow test_runaway_guard;
          Alcotest.test_case "env variable" `Quick test_runaway_env ] );
      ( "frontend",
        [ Alcotest.test_case "shadowing warning" `Quick test_shadowing_warning
        ] );
    ]
