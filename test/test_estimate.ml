(* Tests for the static estimator (the serve static tier): affine-GEP
   extraction against a reference lane enumeration, trip-count recovery
   on seeded loop shapes, and calibration against the simulator on the
   registry workloads. *)

module E = Passes.Estimate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let estimate ?(block = (32, 1)) ?(line_size = 128) src =
  E.run ~block ~line_size (Minicuda.Frontend.compile ~file:"est.cu" src)

let conf_label = E.confidence_label

(* Reference enumeration mirroring the model's assumption: a
   line-aligned base plus [cx*tid.x + cy*tid.y] bytes, distinct lines
   over one warp laid out row-major over the block. *)
let ref_lines ~bx ~by ~warp_size ~line_size ~cx ~cy =
  let lanes = min warp_size (max 1 (bx * max 1 by)) in
  let lines = Hashtbl.create 64 in
  for l = 0 to lanes - 1 do
    let tx = l mod bx and ty = l / bx in
    let off = (cx * tx) + (cy * ty) in
    let line =
      if off >= 0 then off / line_size else ((off + 1) / line_size) - 1
    in
    Hashtbl.replace lines line ()
  done;
  Hashtbl.length lines

(* ----- qcheck: affine-GEP extraction roundtrips ----- *)

(* A 1-D strided store [a[cx*tid.x + c0]]: the extracted pattern must
   predict exactly the lines the stride enumerates, with [Affine]
   confidence (or [Exact] when the offset is lane-uniform). *)
let qcheck_strided_1d =
  QCheck2.Test.make ~name:"1-D strided GEP predicts enumerated lines" ~count:80
    QCheck2.Gen.(pair (int_range (-8) 8) (int_range 0 64))
    (fun (cx, c0) ->
      let src =
        Printf.sprintf
          {|
__global__ void k(float* a) {
  int i = threadIdx.x;
  a[%d * i + %d] = 1.0f;
}
|}
          cx c0
      in
      let e = estimate src in
      match e.E.sites with
      | [ s ] ->
        let expected =
          ref_lines ~bx:32 ~by:1 ~warp_size:32 ~line_size:128 ~cx:(4 * cx)
            ~cy:0
        in
        s.E.lines = float_of_int expected
        && s.E.site_kind = "store"
        && (if cx = 0 then s.E.lines_confidence = E.Exact
            else s.E.lines_confidence = E.Affine)
      | _ -> false)

(* A 2-D strided store over a (16, 2) block — one warp spans both rows,
   so both the tid.x and tid.y coefficients shape the footprint. *)
let qcheck_strided_2d =
  QCheck2.Test.make ~name:"2-D strided GEP predicts enumerated lines" ~count:80
    QCheck2.Gen.(pair (int_range (-4) 4) (int_range (-4) 4))
    (fun (cx, cy) ->
      let src =
        Printf.sprintf
          {|
__global__ void k(float* a) {
  a[%d * threadIdx.x + %d * threadIdx.y] = 1.0f;
}
|}
          cx cy
      in
      let e = estimate ~block:(16, 2) src in
      match e.E.sites with
      | [ s ] ->
        let expected =
          ref_lines ~bx:16 ~by:2 ~warp_size:32 ~line_size:128 ~cx:(4 * cx)
            ~cy:(4 * cy)
        in
        s.E.lines = float_of_int expected
        && (if cx = 0 && cy = 0 then s.E.lines_confidence = E.Exact
            else s.E.lines_confidence = E.Affine)
      | _ -> false)

(* When blockDim.x is a warp multiple, tid.y is constant within a warp
   and must drop out of the footprint entirely. *)
let qcheck_tid_y_uniform_drops =
  QCheck2.Test.make ~name:"warp-multiple blockDim.x makes tid.y uniform"
    ~count:40
    QCheck2.Gen.(int_range 1 8)
    (fun cy ->
      let src =
        Printf.sprintf
          {|
__global__ void k(float* a) {
  a[threadIdx.x + %d * threadIdx.y] = 1.0f;
}
|}
          cy
      in
      let e = estimate ~block:(32, 4) src in
      match e.E.sites with
      | [ s ] -> s.E.lines = 1. (* 32 consecutive floats = one 128B line *)
      | _ -> false)

(* ----- trip counts on seeded loop shapes ----- *)

let loop_bound e =
  match e.E.loop_bounds with
  | [ b ] -> b
  | l -> Alcotest.failf "expected one loop, estimator saw %d" (List.length l)

let test_trip_constant () =
  let e =
    estimate
      {|
__global__ void k(float* a) {
  float s = 0.0f;
  for (int j = 0; j < 10; j = j + 1) { s = s + a[threadIdx.x + j]; }
  a[threadIdx.x] = s;
}
|}
  in
  let b = loop_bound e in
  check_bool "constant bound is exact" true (b.E.trips_confidence = E.Exact);
  check_int "ten trips" 10 (int_of_float b.E.trips)

let test_trip_stepped () =
  let e =
    estimate
      {|
__global__ void k(float* a) {
  float s = 0.0f;
  for (int j = 0; j < 16; j = j + 2) { s = s + a[j]; }
  a[threadIdx.x] = s;
}
|}
  in
  let b = loop_bound e in
  check_bool "stepped bound is exact" true (b.E.trips_confidence = E.Exact);
  check_int "eight trips" 8 (int_of_float b.E.trips)

let test_trip_down_counting () =
  let e =
    estimate
      {|
__global__ void k(float* a) {
  float s = 0.0f;
  for (int j = 12; j > 0; j = j - 1) { s = s + a[j]; }
  a[threadIdx.x] = s;
}
|}
  in
  let b = loop_bound e in
  check_bool "down-counting bound is exact" true
    (b.E.trips_confidence = E.Exact);
  check_int "twelve trips" 12 (int_of_float b.E.trips)

let test_trip_symbolic_bound () =
  let e =
    estimate
      {|
__global__ void k(float* a, int n) {
  float s = 0.0f;
  for (int j = 0; j < n; j = j + 1) { s = s + a[j]; }
  a[threadIdx.x] = s;
}
|}
  in
  let b = loop_bound e in
  check_bool "parameter bound is a heuristic" true
    (b.E.trips_confidence = E.Heuristic);
  check_bool "heuristic default is positive" true (b.E.trips > 0.)

let test_trip_nested () =
  let e =
    estimate
      {|
__global__ void k(float* a) {
  float s = 0.0f;
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 6; j = j + 1) { s = s + a[i * 6 + j]; }
  }
  a[threadIdx.x] = s;
}
|}
  in
  let trips =
    List.sort compare
      (List.map (fun (b : E.loop_bound) -> int_of_float b.E.trips)
         e.E.loop_bounds)
  in
  Alcotest.(check (list int)) "both nest levels recovered exactly" [ 4; 6 ] trips;
  check_bool "both exact" true
    (List.for_all
       (fun (b : E.loop_bound) -> b.E.trips_confidence = E.Exact)
       e.E.loop_bounds)

(* ----- structural sanity on the estimate record ----- *)

let test_degree_bounds_and_weights () =
  let e =
    estimate
      {|
__global__ void k(float* a, float* b) {
  int i = threadIdx.x;
  b[i] = a[32 * i];
}
|}
  in
  check_bool "degree within [1, warp]" true (e.E.degree >= 1. && e.E.degree <= 32.);
  check_int "both sites found" 2 (List.length e.E.sites);
  check_bool "histogram fractions sum to ~1" true
    (let total = List.fold_left (fun a (_, f) -> a +. f) 0. e.E.reuse_histogram in
     Float.abs (total -. 1.) < 1e-6);
  check_bool "weights positive" true
    (List.for_all (fun (s : E.site) -> s.E.weight > 0.) e.E.sites)

(* ----- calibration against the simulator -----

   The static estimate vs the instrumented simulation on every registry
   workload, under tolerances recorded from the BENCH_PR7 run (with
   slack for platform jitter).  [bfs]/[lavaMD]/[srad_v2] have genuinely
   data-dependent footprints the IR-only model cannot see — their
   recorded tolerances are wide and their confidence self-reports say
   so; the point pinned here is that errors never silently regress past
   what was measured. *)

let tolerances =
  (* app, max |degree error|, max |branch pp error|, max |no-reuse error| *)
  [ ("backprop", 1.2, 12., 0.5);
    ("bfs", 13., 18., 0.2);
    ("hotspot", 1.0, 30., 0.05);
    ("lavaMD", 9., 20., 0.1);
    ("nn", 0.3, 4., 0.05);
    ("nw", 0.5, 55., 0.05);
    ("srad_v2", 6., 4., 0.55);
    ("bicg", 0.3, 13., 0.05);
    ("syrk", 0.3, 13., 0.4);
    ("syr2k", 0.3, 13., 0.5) ]

let test_calibration () =
  let arch = Gpusim.Arch.kepler_k40c ~l1_kb:16 () in
  List.iter
    (fun (name, deg_tol, br_tol, nr_tol) ->
      let w = Workloads.Registry.find name in
      let e = Advisor.estimate ~arch w in
      let s = Advisor.profile ~arch w in
      let md = Advisor.mem_divergence ~line_size:128 s in
      let bd = Advisor.branch_divergence s in
      let rd = Advisor.reuse_distance s in
      let deg_err = Float.abs (e.E.degree -. md.Analysis.Mem_divergence.degree) in
      let br_err =
        Float.abs (e.E.branch_percent -. Analysis.Branch_divergence.percent bd)
      in
      let nr_err =
        Float.abs
          (e.E.no_reuse_fraction -. Analysis.Reuse_distance.no_reuse_fraction rd)
      in
      if deg_err > deg_tol then
        Alcotest.failf "%s: degree error %.2f exceeds recorded %.2f [%s]" name
          deg_err deg_tol
          (conf_label e.E.degree_confidence);
      if br_err > br_tol then
        Alcotest.failf "%s: branch error %.2f pp exceeds recorded %.2f [%s]"
          name br_err br_tol
          (conf_label e.E.branch_confidence);
      if nr_err > nr_tol then
        Alcotest.failf "%s: no-reuse error %.2f exceeds recorded %.2f [%s]"
          name nr_err nr_tol
          (conf_label e.E.reuse_confidence))
    tolerances;
  check_int "every registry workload calibrated" (List.length tolerances)
    (List.length Workloads.Registry.all)

let () =
  Alcotest.run "estimate"
    [
      ( "affine extraction",
        [
          QCheck_alcotest.to_alcotest qcheck_strided_1d;
          QCheck_alcotest.to_alcotest qcheck_strided_2d;
          QCheck_alcotest.to_alcotest qcheck_tid_y_uniform_drops;
        ] );
      ( "trip counts",
        [
          Alcotest.test_case "constant bound" `Quick test_trip_constant;
          Alcotest.test_case "non-unit step" `Quick test_trip_stepped;
          Alcotest.test_case "down-counting" `Quick test_trip_down_counting;
          Alcotest.test_case "symbolic bound" `Quick test_trip_symbolic_bound;
          Alcotest.test_case "nested loops" `Quick test_trip_nested;
        ] );
      ( "shape",
        [
          Alcotest.test_case "degree bounds and weights" `Quick
            test_degree_bounds_and_weights;
        ] );
      ( "calibration",
        [ Alcotest.test_case "ten registry workloads" `Slow test_calibration ] );
    ]
