(* End-to-end tests of the Advisor facade: profiling sessions, the
   overhead study and the bypassing study. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let arch = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()

let test_instrument_source () =
  let c =
    Advisor.instrument_source ~file:"k.cu"
      "__global__ void k(float* a) { a[threadIdx.x] = 1.0f; }"
  in
  check "manifest present" true (c.manifest <> None);
  check "prog has kernel" true
    (List.exists (fun (n, _) -> n = "k") c.prog.Ptx.Isa.funcs)

let test_profile_session () =
  let w = Workloads.Registry.find "nn" in
  let s = Advisor.profile ~arch w in
  check "instances recorded" true (Advisor.instances s <> []);
  let rd = Advisor.reuse_distance s in
  check "nn is streaming" true (Analysis.Reuse_distance.no_reuse_fraction rd > 0.99);
  let md = Advisor.mem_divergence s in
  check "nn coalesced" true (md.degree < 1.1);
  let bd = Advisor.branch_divergence s in
  check "nn near-zero divergence" true (Analysis.Branch_divergence.percent bd < 2.)

let test_profile_options_respected () =
  let w = Workloads.Registry.find "nn" in
  let s =
    Advisor.profile
      ~options:
        { Passes.Instrument.memory = false; control_flow = true; arithmetic = false; sharing = false }
      ~arch w
  in
  let i = List.hd (Advisor.instances s) in
  check_int "no memory events without memory hooks" 0 i.mem_count;
  check "blocks still recorded" true (Hashtbl.length i.bb_stats > 0)

let test_run_native_deterministic () =
  let w = Workloads.Registry.find "nn" in
  let a = fst (Advisor.run_native ~arch w) in
  let b = fst (Advisor.run_native ~arch w) in
  check_int "same cycles across runs" a b

let test_overhead_positive () =
  let w = Workloads.Registry.find "nn" in
  let o = Advisor.overhead_study ~arch w in
  check "instrumented slower" true (o.slowdown > 1.5);
  check "paper band (<= 500x)" true (o.slowdown < 500.)

let test_bypass_study_shape () =
  let w = Workloads.Registry.find "bicg" in
  let b = Advisor.bypass_study ~arch:(Gpusim.Arch.kepler_k40c ~num_sms:5 ~l1_kb:16 ()) w in
  check_int "sweep covers 0..warps" (b.warps_per_cta + 1) (List.length b.sweep);
  check "oracle no worse than baseline" true (b.oracle_cycles <= b.baseline_cycles);
  check "oracle no worse than prediction" true (b.oracle_cycles <= b.predicted_cycles);
  (* full caching must behave like the baseline (modulo the prologue) *)
  let full = List.assoc b.warps_per_cta b.sweep in
  let ratio = float_of_int full /. float_of_int b.baseline_cycles in
  check "N=warps == baseline within 10%" true (ratio > 0.9 && ratio < 1.1);
  check "prediction in range" true
    (b.predicted_warps >= 0 && b.predicted_warps <= b.warps_per_cta)

(* ----- the domain pool ----- *)

let test_pool_map_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "map preserves input order" (List.map (fun x -> x * x) xs)
    (Pool.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty list" [] (Pool.map ~domains:4 Fun.id []);
  Alcotest.(check (list int))
    "sequential fallback" [ 2; 4 ]
    (Pool.map ~domains:1 (fun x -> 2 * x) [ 1; 2 ])

let test_pool_map_exception () =
  match
    Pool.map ~domains:3
      (fun x -> if x mod 5 = 3 then failwith (string_of_int x) else x)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    (* first failing input in input order, not completion order *)
    Alcotest.(check string) "first error wins" "3" msg

(* The sweep must not depend on how many domains execute it. *)
let test_bypass_parallel_deterministic () =
  let w = Workloads.Registry.find "nn" in
  let arch = Gpusim.Arch.kepler_k40c ~num_sms:5 ~l1_kb:16 () in
  let a = Advisor.bypass_study ~domains:1 ~arch w in
  let b = Advisor.bypass_study ~domains:4 ~arch w in
  check "parallel sweep == sequential sweep" true (a = b)

let test_compile_cache_hits () =
  let src = "__global__ void memo(float* a) { a[threadIdx.x] = 3.0f; }" in
  let c1 = Advisor.compile_source ~file:"memo.cu" src in
  let hits0, _ = Advisor.compile_cache_stats () in
  let c2 = Advisor.compile_source ~file:"memo.cu" src in
  let hits1, _ = Advisor.compile_cache_stats () in
  check "same compiled value returned" true (c1 == c2);
  check "hit counted" true (hits1 = hits0 + 1);
  (* a different instrumentation selection is a different cache entry *)
  let c3 =
    Advisor.compile_source
      ~instrument:
        { Passes.Instrument.memory = true; control_flow = false; arithmetic = false; sharing = false }
      ~file:"memo.cu" src
  in
  check "instrumented compile is distinct" true (c3 != c1)

let test_rewrite_all_kernels () =
  let c =
    Advisor.instrument_source ~file:"k.cu"
      "__global__ void k1(float* a) { a[0] = a[1]; }\n__global__ void k2(float* a) { a[2] = a[3]; }"
  in
  let rewritten = Advisor.rewrite_all_kernels c.prog ~warps_to_cache:1 in
  let has_cg name =
    let f = Ptx.Isa.find_func rewritten name in
    Array.exists
      (function Ptx.Isa.Ld { cop = Ptx.Isa.Cg; _ } -> true | _ -> false)
      f.Ptx.Isa.body
  in
  check "k1 rewritten" true (has_cg "k1");
  check "k2 rewritten" true (has_cg "k2")

let () =
  Alcotest.run "advisor"
    [
      ( "pipeline",
        [ Alcotest.test_case "instrument_source" `Quick test_instrument_source;
          Alcotest.test_case "profile session" `Slow test_profile_session;
          Alcotest.test_case "options respected" `Slow test_profile_options_respected;
          Alcotest.test_case "determinism" `Slow test_run_native_deterministic ] );
      ( "studies",
        [ Alcotest.test_case "overhead" `Slow test_overhead_positive;
          Alcotest.test_case "bypass shape" `Slow test_bypass_study_shape;
          Alcotest.test_case "rewrite all kernels" `Quick test_rewrite_all_kernels ] );
      ( "pool",
        [ Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "map exception" `Quick test_pool_map_exception;
          Alcotest.test_case "parallel bypass deterministic" `Slow
            test_bypass_parallel_deterministic ] );
      ( "compile-cache",
        [ Alcotest.test_case "memoization" `Quick test_compile_cache_hits ] );
    ]
