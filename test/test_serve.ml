(* The serve daemon end to end: protocol parsing, request routing, a
   live socket server (round-trips for every op, concurrency,
   backpressure, per-request timeouts, graceful shutdown), and
   regression tests for the concurrency bugfix sweep that shipped with
   it (overlapping cold compiles, pool budget safety on spawn failure,
   lenient env parsing). *)

module Json = Analysis.Json
module Jsonv = Obs.Jsonv
module Protocol = Serve.Protocol
module Router = Serve.Router
module Jobq = Serve.Jobq
module Server = Serve.Server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ----- protocol ----- *)

let test_parse_ok () =
  let line =
    {|{"id": 7, "op": "profile", "app": "nn", "arch": "pascal", "scale": 2, "timeout_ms": 500, "domains": 3, "instrument": "all", "out": "/tmp/t.json", "ms": 10, "future_field": [1, 2]}|}
  in
  match Protocol.parse_request line with
  | Error (_, code, msg) -> Alcotest.failf "parse failed: %s %s" code msg
  | Ok r ->
    check_string "op" "profile" r.Protocol.op;
    check_bool "id" true (r.Protocol.id = Json.Int 7);
    check_string "app" "nn" (Option.get r.Protocol.app);
    check_string "arch" "pascal" r.Protocol.arch_name;
    check_int "scale" 2 (Option.get r.Protocol.scale);
    check_int "timeout_ms" 500 (Option.get r.Protocol.timeout_ms);
    check_int "domains" 3 (Option.get r.Protocol.domains);
    check_string "instrument" "all" (Option.get r.Protocol.instrument);
    check_string "out" "/tmp/t.json" (Option.get r.Protocol.out);
    check_int "ms" 10 (Option.get r.Protocol.ms)

let test_parse_defaults () =
  match Protocol.parse_request {|{"op": "ping"}|} with
  | Error _ -> Alcotest.fail "minimal request should parse"
  | Ok r ->
    check_bool "absent id is Null" true (r.Protocol.id = Json.Null);
    check_string "default arch" "kepler" r.Protocol.arch_name;
    check_bool "absent app" true (r.Protocol.app = None)

let test_parse_errors () =
  let code_of = function
    | Error (_, code, _) -> code
    | Ok _ -> "parsed"
  in
  check_string "garbage" "bad_request" (code_of (Protocol.parse_request "{nope"));
  check_string "non-object" "bad_request" (code_of (Protocol.parse_request "[1,2]"));
  check_string "missing op" "bad_request" (code_of (Protocol.parse_request "{}"));
  check_string "op not a string" "bad_request"
    (code_of (Protocol.parse_request {|{"op": 3}|}));
  check_string "scale not an int" "bad_request"
    (code_of (Protocol.parse_request {|{"op": "profile", "scale": "big"}|}));
  (* the id still comes back when the envelope parsed *)
  (match Protocol.parse_request {|{"id": "abc", "op": "profile", "ms": 1.5}|} with
  | Error (id, "bad_request", _) -> check_bool "id echoed" true (id = Json.String "abc")
  | _ -> Alcotest.fail "fractional ms should be a bad_request with the id")

let test_response_lines () =
  let ok = Protocol.to_line (Protocol.ok_response ~id:(Json.Int 1) ~op:"ping" (Json.Obj [])) in
  check_string "ok line" {|{"id":1,"ok":true,"op":"ping","result":{}}|} ok;
  let err =
    Protocol.to_line
      (Protocol.error_response ~id:Json.Null ~op:"?" ~code:"bad_request" "line\nbreak")
  in
  check_bool "responses never contain raw newlines" false
    (String.contains err '\n')

(* ----- router (no daemon) ----- *)

let test_validate () =
  let req line =
    match Protocol.parse_request line with
    | Ok r -> r
    | Error (_, _, m) -> Alcotest.failf "setup parse: %s" m
  in
  let code line =
    match Router.validate (req line) with Ok () -> "ok" | Error (c, _) -> c
  in
  check_string "known op" "ok" (code {|{"op": "ping"}|});
  check_string "unknown op" "unknown_op" (code {|{"op": "frobnicate"}|});
  check_string "unknown app" "unknown_app" (code {|{"op": "profile", "app": "doom"}|});
  check_string "missing app" "bad_request" (code {|{"op": "profile"}|});
  check_string "unknown arch" "unknown_arch"
    (code {|{"op": "profile", "app": "nn", "arch": "volta"}|});
  check_string "app op with everything" "ok" (code {|{"op": "check", "app": "nn"}|});
  check_string "profile accepts tier static" "ok"
    (code {|{"op": "profile", "app": "nn", "tier": "static"}|});
  check_string "profile accepts tier exact" "ok"
    (code {|{"op": "profile", "app": "nn", "tier": "exact"}|});
  check_string "profile_fast is an op" "ok"
    (code {|{"op": "profile_fast", "app": "nn"}|});
  check_string "profile_fast rejects tier exact" "bad_request"
    (code {|{"op": "profile_fast", "app": "nn", "tier": "exact"}|});
  check_string "unknown tier rejected" "bad_request"
    (code {|{"op": "profile", "app": "nn", "tier": "fuzzy"}|});
  check_string "tier on a non-tiered op rejected" "bad_request"
    (code {|{"op": "check", "app": "nn", "tier": "static"}|})

let dispatch line =
  match Protocol.parse_request line with
  | Ok r -> Router.dispatch r
  | Error (_, _, m) -> Alcotest.failf "setup parse: %s" m

let test_dispatch_ping_list () =
  (match dispatch {|{"op": "ping"}|} with
  | Ok (Json.Obj fields) -> check_bool "pong" true (List.assoc "pong" fields = Json.Bool true)
  | _ -> Alcotest.fail "ping should return an object");
  match dispatch {|{"op": "list"}|} with
  | Ok (Json.Obj fields) ->
    let names = function
      | Json.List l -> List.map (function Json.String s -> s | _ -> "?") l
      | _ -> []
    in
    check_bool "nn listed" true (List.mem "nn" (names (List.assoc "apps" fields)));
    check_bool "archs listed" true
      (List.mem "pascal" (names (List.assoc "archs" fields)))
  | _ -> Alcotest.fail "list should return an object"

let test_dispatch_bad_fields () =
  let code line =
    match dispatch line with Error (c, _) -> c | Ok _ -> "ok" in
  check_string "sleep needs ms" "bad_request" (code {|{"op": "sleep"}|});
  check_string "bad instrument" "bad_request"
    (code {|{"op": "compile", "app": "nn", "instrument": "wat"}|})

(* ----- a live daemon over a Unix socket ----- *)

let fresh_socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "advisor-test-%d-%d.sock" (Unix.getpid ()) !n)

(* Run [f client_socket_path] against a daemon on its own domain; shut
   it down and join afterwards, whatever happens. *)
let with_server ?(workers = 2) ?(queue = 16) ?timeout_ms ?cache
    ?(extra = fun c -> c) f =
  let path = fresh_socket_path () in
  let cfg =
    extra
      {
        Server.default_config with
        socket_path = Some path;
        stdio = false;
        workers;
        queue_cap = queue;
        default_timeout_ms = timeout_ms;
        cache;
      }
  in
  let srv = Server.create cfg in
  let daemon = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Domain.join daemon;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path srv)

let connect path =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ENOTSOCK), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      Unix.sleepf 0.01;
      go ()
  in
  go ()

let send fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

(* Read exactly [n] response lines (any order), failing loudly on EOF
   or a 120 s stall. *)
let read_lines ?(timeout = 120.) fd n =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  let buf = Bytes.create 65536 in
  let pending = ref "" in
  let lines = ref [] in
  while List.length !lines < n do
    let r = Unix.read fd buf 0 (Bytes.length buf) in
    if r = 0 then
      Alcotest.failf "server closed the connection after %d/%d responses"
        (List.length !lines) n;
    let rec go = function
      | [ last ] -> pending := last
      | line :: rest ->
        if String.trim line <> "" then lines := !lines @ [ line ];
        go rest
      | [] -> pending := ""
    in
    go (String.split_on_char '\n' (!pending ^ Bytes.sub_string buf 0 r))
  done;
  !lines

let parse_resp line =
  match Jsonv.parse line with
  | Ok v -> v
  | Error m -> Alcotest.failf "unparseable response %S: %s" line m

let field name v =
  match Jsonv.member name v with
  | Some f -> f
  | None -> Alcotest.failf "response is missing field %S" name

let resp_ok v = field "ok" v = Jsonv.Bool true

let resp_err_code v =
  match Jsonv.member "code" (field "error" v) with
  | Some (Jsonv.Str s) -> s
  | _ -> Alcotest.fail "error response without a code"

(* Collect [n] responses into an (id -> response) table; ids in these
   tests are always small ints. *)
let collect fd n =
  let lines = read_lines fd n in
  List.map
    (fun line ->
      let v = parse_resp line in
      match field "id" v with
      | Jsonv.Num f -> (int_of_float f, (line, v))
      | Jsonv.Null -> (-1, (line, v))
      | _ -> Alcotest.failf "unexpected id in %S" line)
    lines

(* The served profile response must be byte-identical to the one-shot
   CLI's --json output wrapped in the response envelope. *)
let expected_profile_nn_line ~id =
  let w = Workloads.Registry.find "nn" in
  let arch = Option.get (Gpusim.Arch.of_name "kepler") in
  let session = Advisor.profile ~arch w in
  let report =
    Analysis.Report.of_profile ~app:w.Workloads.Common.name
      ~arch_name:arch.Gpusim.Arch.name ~line_size:arch.Gpusim.Arch.line_size
      session.Advisor.profiler
  in
  Protocol.to_line (Protocol.ok_response ~id:(Json.Int id) ~op:"profile" report)

let test_roundtrip_every_op () =
  with_server ~workers:2 (fun path _srv ->
      let fd = connect path in
      let trace_out = Filename.temp_file "advisor-test-trace" ".json" in
      send fd {|{"id": 0, "op": "ping"}|};
      send fd {|{"id": 1, "op": "list"}|};
      send fd {|{"id": 2, "op": "metrics"}|};
      send fd {|{"id": 3, "op": "sleep", "ms": 5}|};
      send fd {|{"id": 4, "op": "compile", "app": "nn", "instrument": "profile"}|};
      send fd {|{"id": 5, "op": "profile", "app": "nn"}|};
      send fd {|{"id": 6, "op": "check", "app": "nn"}|};
      send fd {|{"id": 7, "op": "bypass", "app": "nn"}|};
      send fd
        (Printf.sprintf {|{"id": 8, "op": "trace", "app": "nn", "out": %S}|}
           trace_out);
      let by_id = collect fd 9 in
      Unix.close fd;
      for i = 0 to 8 do
        let line, v = List.assoc i by_id in
        check_bool (Printf.sprintf "request %d ok (%s)" i line) true (resp_ok v)
      done;
      (* spot-check op-specific payloads *)
      let result i = field "result" (snd (List.assoc i by_id)) in
      (match Jsonv.member "kernels" (result 4) with
      | Some (Jsonv.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "compile response lists kernels");
      (match Jsonv.member "error_count" (result 6) with
      | Some (Jsonv.Num _) -> ()
      | _ -> Alcotest.fail "check response carries an error count");
      (match Jsonv.member "oracle" (result 7) with
      | Some _ -> ()
      | None -> Alcotest.fail "bypass response carries the oracle");
      check_bool "trace wrote the chrome file" true (Sys.file_exists trace_out);
      Sys.remove trace_out;
      Obs.Trace.disable ();
      Obs.Trace.clear ())

let test_served_profile_matches_oneshot () =
  with_server ~workers:2 (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 11, "op": "profile", "app": "nn"}|};
      let line = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_string "served profile == one-shot report" (expected_profile_nn_line ~id:11)
        line)

let test_malformed_and_unknown_over_socket () =
  with_server ~workers:1 (fun path _srv ->
      let fd = connect path in
      send fd "this is not json";
      send fd {|{"id": 1, "op": "frobnicate"}|};
      send fd {|{"id": 2, "op": "profile", "app": "doom"}|};
      let by_id = collect fd 3 in
      Unix.close fd;
      let code i = resp_err_code (snd (List.assoc i by_id)) in
      check_string "garbage line" "bad_request" (code (-1));
      check_string "unknown op" "unknown_op" (code 1);
      check_string "unknown app" "unknown_app" (code 2))

(* >= 8 profile requests in flight at once, all answered correctly and
   identically to the one-shot report. *)
let test_concurrent_profiles () =
  with_server ~workers:8 (fun path _srv ->
      let fd = connect path in
      for i = 0 to 7 do
        send fd (Printf.sprintf {|{"id": %d, "op": "profile", "app": "nn"}|} i)
      done;
      let by_id = collect fd 8 in
      Unix.close fd;
      for i = 0 to 7 do
        check_string
          (Printf.sprintf "profile %d matches the one-shot report" i)
          (expected_profile_nn_line ~id:i)
          (fst (List.assoc i by_id))
      done)

(* One worker busy + one queue slot full => further requests are
   rejected immediately with "overloaded", and the accepted ones still
   complete. *)
let test_overloaded () =
  with_server ~workers:1 ~queue:1 (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 0, "op": "sleep", "ms": 600}|};
      (* let the single worker pop request 0 off the queue *)
      Unix.sleepf 0.2;
      send fd {|{"id": 1, "op": "sleep", "ms": 10}|};
      (* queue now holds request 1; these two must bounce *)
      send fd {|{"id": 2, "op": "sleep", "ms": 10}|};
      send fd {|{"id": 3, "op": "sleep", "ms": 10}|};
      let by_id = collect fd 4 in
      Unix.close fd;
      check_bool "slow request completed" true (resp_ok (snd (List.assoc 0 by_id)));
      check_bool "queued request completed" true (resp_ok (snd (List.assoc 1 by_id)));
      check_string "third rejected" "overloaded" (resp_err_code (snd (List.assoc 2 by_id)));
      check_string "fourth rejected" "overloaded" (resp_err_code (snd (List.assoc 3 by_id))))

(* A per-request deadline kills that request (code "timeout") without
   taking the daemon down: both a diagnostic sleep and a real
   simulation get cancelled, and the daemon keeps answering. *)
let test_timeout_leaves_daemon_alive () =
  with_server ~workers:2 (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 0, "op": "sleep", "ms": 60000, "timeout_ms": 100}|};
      send fd {|{"id": 1, "op": "profile", "app": "bfs", "timeout_ms": 1}|};
      let by_id = collect fd 2 in
      check_string "sleep timed out" "timeout" (resp_err_code (snd (List.assoc 0 by_id)));
      check_string "simulation timed out" "timeout"
        (resp_err_code (snd (List.assoc 1 by_id)));
      (* the daemon survived both cancellations *)
      send fd {|{"id": 2, "op": "profile", "app": "nn"}|};
      let line = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_string "daemon still serves correct results"
        (expected_profile_nn_line ~id:2) line)

(* Graceful shutdown drains accepted work: requests enqueued before the
   stop are answered, then [run] returns. *)
let test_shutdown_drains () =
  with_server ~workers:1 (fun path srv ->
      let fd = connect path in
      send fd {|{"id": 0, "op": "sleep", "ms": 300}|};
      send fd {|{"id": 1, "op": "sleep", "ms": 50}|};
      (* both lines are on the daemon's side of the socket; give the
         select loop a beat to enqueue them, then pull the plug *)
      Unix.sleepf 0.15;
      Server.request_shutdown srv;
      let by_id = collect fd 2 in
      Unix.close fd;
      check_bool "in-flight request drained" true (resp_ok (snd (List.assoc 0 by_id)));
      check_bool "queued request drained" true (resp_ok (snd (List.assoc 1 by_id))))

(* ----- the content-addressed result cache ----- *)

let metric_counter name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter i) -> i
  | _ -> 0

let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "advisor-rescache-%d-%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* A hot request is answered from the cache byte-for-byte (including a
   *different* id spliced around the cached payload) without launching
   a single simulation. *)
let test_cache_hit_byte_identical_no_launches () =
  (* computed first: this launches simulations of its own *)
  let expected_cold = expected_profile_nn_line ~id:31 in
  let expected_hot = expected_profile_nn_line ~id:32 in
  with_server ~workers:2 ~cache:Serve.Rescache.default_config (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 31, "op": "profile", "app": "nn"}|};
      let cold = List.hd (read_lines fd 1) in
      check_string "cold response matches the one-shot report" expected_cold cold;
      let launches0 = metric_counter "sim.launches" in
      let hits0 = metric_counter "serve.cache.hits" in
      send fd {|{"id": 32, "op": "profile", "app": "nn"}|};
      let hot = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_string "hot response matches the one-shot report" expected_hot hot;
      check_int "hot response is a cache hit" (hits0 + 1)
        (metric_counter "serve.cache.hits");
      check_int "hot response launched zero simulations" launches0
        (metric_counter "sim.launches"))

(* The static tier answers from the intake domain: a [profile_fast]
   round-trip launches zero simulations, matches the one-shot
   estimate byte for byte, and its spelled-out twin
   [profile + tier:static] is served from the same cache entry — while
   an exact profile of the same app still simulates. *)
let test_profile_fast_roundtrip_no_launches () =
  let w = Workloads.Registry.find "nn" in
  let arch = Option.get (Gpusim.Arch.of_name "kepler") in
  let raw = Json.to_string (Advisor.estimate_json ~arch w) in
  let expected ~id ~op =
    Protocol.ok_line_raw ~id:(Json.Int id) ~op raw
  in
  with_server ~workers:2 ~cache:Serve.Rescache.default_config (fun path _srv ->
      let fd = connect path in
      let launches0 = metric_counter "sim.launches" in
      let static0 = metric_counter "serve.static.hits" in
      send fd {|{"id": 41, "op": "profile_fast", "app": "nn"}|};
      let cold = List.hd (read_lines fd 1) in
      check_string "estimate matches the one-shot encoder"
        (expected ~id:41 ~op:"profile_fast") cold;
      check_int "zero simulator launches" launches0
        (metric_counter "sim.launches");
      check_int "answered by the static path" (static0 + 1)
        (metric_counter "serve.static.hits");
      let hits0 = metric_counter "serve.cache.hits" in
      send fd {|{"id": 42, "op": "profile", "app": "nn", "tier": "static"}|};
      let hot = List.hd (read_lines fd 1) in
      check_string "spelled-out static tier splices the same bytes"
        (expected ~id:42 ~op:"profile") hot;
      check_int "served from the shared cache entry" (hits0 + 1)
        (metric_counter "serve.cache.hits");
      check_int "still zero simulator launches" launches0
        (metric_counter "sim.launches");
      (* an exact profile of the same app must NOT see the static entry *)
      send fd {|{"id": 43, "op": "profile", "app": "nn"}|};
      let exact = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_bool "exact profile is not the cached estimate" false
        (String.equal exact (expected ~id:43 ~op:"profile"));
      check_bool "exact profile simulated" true
        (metric_counter "sim.launches" > launches0))

(* Requests that spell out the defaults, reorder fields, or vary
   id/timeout share the cold request's cache entry; a different scale
   does not. *)
let test_cache_defaults_and_reordering_share_entry () =
  with_server ~workers:2 ~cache:Serve.Rescache.default_config (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 0, "op": "check", "app": "nn"}|};
      ignore (read_lines fd 1);
      let hits0 = metric_counter "serve.cache.hits" in
      let w = Workloads.Registry.find "nn" in
      send fd
        (Printf.sprintf
           {|{"scale": %d, "app": "nn", "arch": "kepler-16k", "op": "check", "timeout_ms": 99999, "id": "other"}|}
           w.Workloads.Common.default_scale);
      ignore (read_lines fd 1);
      check_int "defaults spelled out + reordered fields still hit" (hits0 + 1)
        (metric_counter "serve.cache.hits");
      send fd
        (Printf.sprintf {|{"id": 2, "op": "check", "app": "nn", "scale": %d}|}
           (w.Workloads.Common.default_scale + 1));
      ignore (read_lines fd 1);
      Unix.close fd;
      check_int "a different scale is a different entry" (hits0 + 1)
        (metric_counter "serve.cache.hits"))

let test_lru_eviction_bounds () =
  let open Serve.Rescache in
  (* entry bound *)
  let c = create { max_entries = 3; max_bytes = 1024 * 1024; dir = None } in
  store c "k1" "one";
  store c "k2" "two";
  store c "k3" "three";
  check_bool "k1 resident" true (find c "k1" <> None);
  (* k1 was just touched: k2 is now least recent and must evict *)
  store c "k4" "four";
  check_int "entry bound holds" 3 (entries c);
  check_bool "least-recently-used entry evicted" true (find c "k2" = None);
  check_bool "recently-touched entry survives" true (find c "k1" <> None);
  (* byte bound *)
  let c = create { max_entries = 100; max_bytes = 10; dir = None } in
  store c "b1" "12345678";
  store c "b2" "12345678";
  check_int "byte bound evicts to fit" 1 (entries c);
  check_bool "newest entry kept" true (find c "b2" <> None);
  check_bool "bytes within bound" true (bytes c <= 10);
  (* an entry larger than the whole byte budget is never resident *)
  store c "huge" (String.make 64 'x');
  check_int "oversized entry is not cached" 0 (entries c)

let test_disk_tier_restart_roundtrip () =
  let open Serve.Rescache in
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg = { max_entries = 16; max_bytes = 1024 * 1024; dir = Some dir } in
      let c1 = create cfg in
      store c1 "alpha" {|{"v": 1}|};
      store c1 "beta" {|{"v": 2}|};
      (* a fresh instance on the same dir = a daemon restart *)
      let loads0 = metric_counter "serve.cache.loads" in
      let c2 = create cfg in
      check_int "restart reloaded both entries" (loads0 + 2)
        (metric_counter "serve.cache.loads");
      check_bool "alpha survives the restart" true
        (find c2 "alpha" = Some {|{"v": 1}|});
      check_bool "beta survives the restart" true
        (find c2 "beta" = Some {|{"v": 2}|});
      (* memory eviction falls back to the disk tier *)
      let small =
        create { max_entries = 1; max_bytes = 1024 * 1024; dir = Some dir }
      in
      store small "gamma" {|{"v": 3}|};
      (* gamma displaced whatever the startup load kept; an evicted
         key must still be served from its file *)
      check_bool "memory miss falls back to disk" true
        (find small "alpha" = Some {|{"v": 1}|}))

let test_corrupt_cache_files_skipped () =
  let open Serve.Rescache in
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg = { max_entries = 16; max_bytes = 1024 * 1024; dir = Some dir } in
      let c1 = create cfg in
      store c1 "good" {|{"ok": true}|};
      (* sabotage: garbage, a truncated entry, and a flipped payload *)
      let write name content =
        let oc = open_out_bin (Filename.concat dir name) in
        output_string oc content;
        close_out oc
      in
      write "0123456789abcdef0123456789abcdef" "total garbage";
      write "fedcba9876543210fedcba9876543210"
        "cudaadvisor-rescache 1 00000000000000000000000000000000 9999\ntrunc\n{";
      let corrupt0 = metric_counter "serve.cache.corrupt" in
      let c2 = create cfg in
      check_bool "good entry still loads" true
        (find c2 "good" = Some {|{"ok": true}|});
      check_bool "corrupt files were counted and skipped" true
        (metric_counter "serve.cache.corrupt" >= corrupt0 + 2))

(* ----- cache keys ----- *)

(* [Advisor.result_key] sorts its field list before hashing, so the key
   is invariant under any permutation of the extra fields. *)
let qcheck_key_stable_under_reordering =
  QCheck2.Test.make ~name:"result key is stable under field reordering"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 6)
           (pair
              (string_size ~gen:printable (int_range 1 8))
              (string_size ~gen:printable (int_range 0 12))))
        int)
    (fun (extra, seed) ->
      (* a deterministic shuffle driven by the generated seed *)
      let shuffled =
        List.map snd
          (List.sort compare
             (List.mapi (fun i kv -> ((i * seed * 2654435761) land 0xffff, i, kv)) extra
             |> List.map (fun (h, i, kv) -> ((h, i), kv))))
      in
      Advisor.result_key ~op:"profile" ~app:"nn" ~arch_name:"kepler" ~scale:1
        ~extra ~source:"__global__ void k() {}" ()
      = Advisor.result_key ~op:"profile" ~app:"nn" ~arch_name:"kepler" ~scale:1
          ~extra:shuffled ~source:"__global__ void k() {}" ())

let qcheck_canonical_source_whitespace =
  QCheck2.Test.make
    ~name:"keys ignore line endings and trailing whitespace" ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) (string_size ~gen:printable (int_range 0 12)))
    (fun lines ->
      (* strip what canonicalization strips, then re-decorate randomly *)
      let base = List.map (fun l -> String.concat "" (String.split_on_char '\r' l)) lines in
      let plain = String.concat "\n" base in
      let decorated = String.concat "\r\n" (List.map (fun l -> l ^ "  \t") base) ^ "\n\n" in
      let key source =
        Advisor.result_key ~op:"check" ~app:"nn" ~arch_name:"kepler" ~scale:1
          ~source ()
      in
      key plain = key decorated)

let test_cachekey_of_request () =
  let req line =
    match Protocol.parse_request line with
    | Ok r -> r
    | Error (_, c, m) -> Alcotest.failf "bad test request (%s: %s)" c m
  in
  let key line = Serve.Cachekey.of_request (req line) in
  let k_implicit = key {|{"id": 1, "op": "profile", "app": "nn"}|} in
  check_bool "cacheable op yields a key" true (k_implicit <> None);
  check_bool "defaults filled: explicit arch/scale gives the same key" true
    (let w = Workloads.Registry.find "nn" in
     key
       (Printf.sprintf
          {|{"id": 2, "op": "profile", "app": "nn", "arch": "kepler", "scale": %d, "timeout_ms": 5}|}
          w.Workloads.Common.default_scale)
     = k_implicit);
  check_bool "arch aliases collapse" true
    (key {|{"op": "profile", "app": "nn", "arch": "kepler-16k"}|} = k_implicit);
  check_bool "another arch is another key" true
    (key {|{"op": "profile", "app": "nn", "arch": "pascal"}|} <> k_implicit);
  check_bool "another op is another key" true
    (key {|{"op": "check", "app": "nn"}|} <> k_implicit);
  check_bool "non-cacheable ops have no key" true
    (key {|{"op": "metrics"}|} = None
    && key {|{"op": "trace", "app": "nn"}|} = None
    && key {|{"op": "compile", "app": "nn"}|} = None);
  check_bool "unknown app has no key" true
    (key {|{"op": "profile", "app": "doom"}|} = None)

(* Bugfix regression: the answer tier is part of the cache key, so a
   cached static estimate can never answer an exact profile request (or
   the reverse), while the two spellings of a static profile share one
   entry. *)
let test_cachekey_tier_separation () =
  let req line =
    match Protocol.parse_request line with
    | Ok r -> r
    | Error (_, c, m) -> Alcotest.failf "bad test request (%s: %s)" c m
  in
  let key line =
    match Serve.Cachekey.of_request (req line) with
    | Some k -> k
    | None -> Alcotest.failf "expected a cache key for %s" line
  in
  let exact = key {|{"op": "profile", "app": "nn"}|} in
  let exact_spelled = key {|{"op": "profile", "app": "nn", "tier": "exact"}|} in
  let static = key {|{"op": "profile", "app": "nn", "tier": "static"}|} in
  let fast = key {|{"op": "profile_fast", "app": "nn"}|} in
  let fast_spelled = key {|{"op": "profile_fast", "app": "nn", "tier": "static"}|} in
  check_bool "static tier never shares the exact entry" false (String.equal static exact);
  check_string "tier default is exact" exact exact_spelled;
  check_string "profile_fast is the static entry" static fast;
  check_string "profile_fast with tier spelled out too" static fast_spelled

(* Excluding one shard from the ring moves only that shard's keys. *)
let test_chash_stability () =
  let ring = Serve.Chash.make [ 0; 1; 2; 3 ] in
  let all _ = true in
  let keys = List.init 200 (fun i -> Printf.sprintf "key-%d" i) in
  let moved =
    List.filter
      (fun k ->
        let before = Serve.Chash.route ring ~alive:all k in
        let after = Serve.Chash.route ring ~alive:(fun s -> s <> 2) k in
        match (before, after) with
        | Some 2, Some s -> s = 2 (* must move off 2: never true *)
        | Some b, Some a -> b <> a (* must not move *)
        | _ -> true)
      keys
  in
  check_int "only the excluded shard's keys moved" 0 (List.length moved);
  check_bool "no live shard routes nothing" true
    (Serve.Chash.route ring ~alive:(fun _ -> false) "x" = None)

(* ----- stale socket files ----- *)

let test_stale_socket_recovered () =
  let path = fresh_socket_path () in
  (* a killed daemon leaves the file behind: bind, then close without
     unlinking — connects now get ECONNREFUSED *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  check_bool "stale socket file exists" true (Sys.file_exists path);
  let cfg =
    {
      Server.default_config with
      socket_path = Some path;
      stdio = false;
      workers = 1;
      queue_cap = 4;
      default_timeout_ms = None;
      cache = None;
    }
  in
  let srv = Server.create cfg in
  let daemon = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Domain.join daemon;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let fd = connect path in
      send fd {|{"id": 1, "op": "ping"}|};
      let line = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_bool "daemon reclaimed the stale socket and serves" true
        (resp_ok (parse_resp line)))

let test_live_socket_refused () =
  with_server ~workers:1 (fun path _srv ->
      (* the daemon binds its socket from a freshly spawned domain; make
         sure it owns the path before the second daemon probes it, or
         the probe can win the race, see ENOENT and claim the path *)
      let fd0 = connect path in
      send fd0 {|{"id": 0, "op": "ping"}|};
      ignore (read_lines fd0 1);
      Unix.close fd0;
      let cfg =
        {
          Server.default_config with
          socket_path = Some path;
          stdio = false;
          workers = 1;
          queue_cap = 4;
          default_timeout_ms = None;
          cache = None;
        }
      in
      let srv2 = Server.create cfg in
      match Server.run srv2 with
      | () -> Alcotest.fail "a second daemon must refuse a live socket"
      | exception Failure msg ->
        check_bool "the error names the live daemon" true
          (let rec has i =
             i + 4 <= String.length msg
             && (String.sub msg i 4 = "live" || has (i + 1))
           in
           has 0);
        (* the probe must not have stolen the path from the live daemon *)
        let fd = connect path in
        send fd {|{"id": 1, "op": "ping"}|};
        let line = List.hd (read_lines fd 1) in
        Unix.close fd;
        check_bool "first daemon unharmed" true (resp_ok (parse_resp line)))

(* ----- telemetry: metrics ops, exposition endpoint, access log, SLOs ----- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_metrics_ops () =
  with_server ~workers:1 (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 1, "op": "ping"}|};
      ignore (read_lines fd 1);
      (* flat shape: counters as numbers, histograms as objects with
         monotone derived percentiles and the raw buckets *)
      send fd {|{"id": 2, "op": "metrics"}|};
      let flat = field "result" (parse_resp (List.hd (read_lines fd 1))) in
      (match Jsonv.member "serve.requests" flat with
      | Some (Jsonv.Num n) -> check_bool "requests counted" true (n >= 1.)
      | _ -> Alcotest.fail "serve.requests missing from metrics");
      (match Jsonv.member "serve.op.ping.ns" flat with
      | Some h ->
        let num k =
          match Jsonv.member k h with
          | Some (Jsonv.Num f) -> f
          | _ -> Alcotest.failf "serve.op.ping.ns lacks %s" k
        in
        check_bool "p50 <= p95 <= p99 <= max" true
          (num "p50" <= num "p95"
          && num "p95" <= num "p99"
          && num "p99" <= num "max");
        (match Jsonv.member "buckets" h with
        | Some (Jsonv.Obj (_ :: _)) -> ()
        | _ -> Alcotest.fail "histogram carries no buckets")
      | None -> Alcotest.fail "per-op latency histogram missing");
      (* typed shape: decodes back into a snapshot losslessly *)
      send fd {|{"id": 3, "op": "metrics_raw"}|};
      let raw = field "result" (parse_resp (List.hd (read_lines fd 1))) in
      let snap = Serve.Metricsenc.of_raw raw in
      check_bool "raw decodes counters" true
        (match List.assoc_opt "serve.requests" snap with
        | Some (Obs.Metrics.Counter n) -> n >= 1
        | _ -> false);
      check_bool "raw decodes histograms with buckets" true
        (match List.assoc_opt "serve.op.ping.ns" snap with
        | Some (Obs.Metrics.Histogram h) ->
          h.Obs.Metrics.count >= 1 && h.Obs.Metrics.filled <> []
        | _ -> false);
      (* exposition shape *)
      send fd {|{"id": 4, "op": "metrics_text"}|};
      let tx = field "result" (parse_resp (List.hd (read_lines fd 1))) in
      (match Jsonv.member "text" tx with
      | Some (Jsonv.Str t) ->
        check_bool "exposition has a counter TYPE line" true
          (contains t "# TYPE serve_requests counter")
      | _ -> Alcotest.fail "metrics_text carries no text");
      Unix.close fd)

(* The HTTP exposition endpoint: a TCP scrape gets a 0.0.4 text page
   whose every line is a comment or "name value". *)
let test_exposition_endpoint () =
  let port = 18200 + (Unix.getpid () mod 1000) in
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  with_server ~workers:1
    ~extra:(fun c -> { c with Server.metrics_addr = Some addr })
    (fun path _srv ->
      let fd = connect path in
      send fd {|{"id": 1, "op": "ping"}|};
      ignore (read_lines fd 1);
      Unix.close fd;
      let tcp = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect tcp
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let req = "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring tcp req 0 (String.length req));
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read tcp chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      Unix.setsockopt_float tcp Unix.SO_RCVTIMEO 10.0;
      drain ();
      Unix.close tcp;
      let resp = Buffer.contents buf in
      check_bool "HTTP 200" true (contains resp "200 OK");
      check_bool "prometheus content type" true
        (contains resp "text/plain; version=0.0.4");
      (* body starts after the blank line of the header block *)
      let body =
        let rec find i =
          if i + 3 >= String.length resp then String.length resp
          else if String.sub resp i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        let s = find 0 in
        String.sub resp s (String.length resp - s)
      in
      check_bool "body mentions serve_requests" true
        (contains body "serve_requests");
      List.iter
        (fun line ->
          let ok =
            line = ""
            || line.[0] = '#'
            || (match String.rindex_opt line ' ' with
               | None -> false
               | Some i ->
                 float_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1))
                 <> None)
          in
          check_bool (Printf.sprintf "line parses: %s" line) true ok)
        (String.split_on_char '\n' body))

let test_access_log_sampling () =
  let log_path = Filename.temp_file "advisor-access" ".ndjson" in
  Sys.remove log_path;
  with_server ~workers:1
    ~extra:(fun c ->
      { c with Server.access_log = Some log_path; access_log_sample = 2 })
    (fun path _srv ->
      let fd = connect path in
      for i = 1 to 4 do
        send fd (Printf.sprintf {|{"id": %d, "op": "ping"}|} i);
        ignore (read_lines fd 1)
      done;
      Unix.close fd;
      let ic = open_in log_path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      check_int "every 2nd request logged" 2 (List.length !lines);
      List.iter
        (fun line ->
          let v = parse_resp line in
          check_bool "entry has op=ping" true
            (Jsonv.member "op" v = Some (Jsonv.Str "ping"));
          check_bool "entry has outcome=ok" true
            (Jsonv.member "outcome" v = Some (Jsonv.Str "ok"));
          check_bool "entry has total_ns" true
            (match Jsonv.member "total_ns" v with
            | Some (Jsonv.Num _) -> true
            | _ -> false);
          check_bool "entry names the serving process" true
            (Jsonv.member "proc" v = Some (Jsonv.Str "serve")))
        !lines);
  Sys.remove log_path

let test_slo_accounting () =
  let before =
    Obs.Metrics.counter_value (Serve.Slo.breaches "ping")
  in
  (* within target: no breach *)
  Serve.Slo.observe ~op:"ping" ~total_ns:1_000_000;
  check_int "fast request burns nothing" before
    (Obs.Metrics.counter_value (Serve.Slo.breaches "ping"));
  (* over the 50 ms ping target: one breach *)
  Serve.Slo.observe ~op:"ping" ~total_ns:90_000_000;
  check_int "slow request breaches" (before + 1)
    (Obs.Metrics.counter_value (Serve.Slo.breaches "ping"));
  (* untargeted op never breaches *)
  Serve.Slo.observe ~op:"sleep" ~total_ns:max_int;
  (* burn: breaches against the (1 - objective) budget *)
  check_bool "burn of 1 breach in 100 requests = 1.0" true
    (Float.abs (Serve.Slo.burn ~breaches:1 ~requests:100 -. 1.0) < 1e-9);
  check_bool "burn without traffic is 0" true
    (Serve.Slo.burn ~breaches:0 ~requests:0 = 0.)

(* ----- the shard fleet, end to end -----

   The supervisor forks, which is only well-defined from a
   single-domain process — so these tests drive the real CLI binary as
   a subprocess instead of running a fleet in this (multi-domain) test
   runner. *)

let cli_binary () =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "advisor_cli.exe"

let start_fleet ?(extra_args = []) ~shards path =
  let cli = cli_binary () in
  if not (Sys.file_exists cli) then
    Alcotest.skip ();
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process cli
      (Array.of_list
         ([ cli; "serve"; "--socket"; path; "--shards"; string_of_int shards;
            "--workers"; "2" ]
         @ extra_args))
      devnull devnull devnull
  in
  Unix.close devnull;
  pid

let stop_fleet pid path =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  try Unix.unlink path with Unix.Unix_error _ -> ()

(* Ask the supervisor for fleet state until every shard reports "up". *)
let wait_fleet_up fd n =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    send fd {|{"id": "up?", "op": "fleet"}|};
    let v = parse_resp (List.hd (read_lines fd 1)) in
    let states =
      match Jsonv.member "shards" (field "result" v) with
      | Some (Jsonv.Arr shards) ->
        List.filter_map
          (fun s ->
            match Jsonv.member "state" s with
            | Some (Jsonv.Str st) -> Some st
            | _ -> None)
          shards
      | _ -> []
    in
    if List.length states = n && List.for_all (( = ) "up") states then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "fleet never became ready (states: %s)"
        (String.concat "," states)
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let fleet_pids fd =
  send fd {|{"id": "pids", "op": "fleet"}|};
  let v = parse_resp (List.hd (read_lines fd 1)) in
  match Jsonv.member "shards" (field "result" v) with
  | Some (Jsonv.Arr shards) ->
    List.filter_map
      (fun s ->
        match Jsonv.member "pid" s with
        | Some (Jsonv.Num p) -> Some (int_of_float p)
        | _ -> None)
      shards
  | _ -> []

let test_fleet_end_to_end () =
  let expected = expected_profile_nn_line ~id:41 in
  let path = fresh_socket_path () in
  let pid = start_fleet ~shards:2 path in
  Fun.protect
    ~finally:(fun () -> stop_fleet pid path)
    (fun () ->
      let fd = connect path in
      wait_fleet_up fd 2;
      (* cold then hot: both byte-identical to the one-shot report *)
      send fd {|{"id": 41, "op": "profile", "app": "nn"}|};
      let cold = List.hd (read_lines fd 1) in
      check_string "served-through-fleet profile == one-shot" expected cold;
      send fd {|{"id": 41, "op": "profile", "app": "nn"}|};
      let hot = List.hd (read_lines fd 1) in
      check_string "cached fleet response is byte-identical" expected hot;
      (* errors still relay *)
      send fd {|{"id": 42, "op": "profile", "app": "doom"}|};
      check_string "unknown app through the fleet" "unknown_app"
        (resp_err_code (parse_resp (List.hd (read_lines fd 1))));
      send fd "not json at all";
      check_string "garbage answered by the supervisor" "bad_request"
        (resp_err_code (parse_resp (List.hd (read_lines fd 1))));
      Unix.close fd)

let test_fleet_rolling_restart_drops_nothing () =
  let path = fresh_socket_path () in
  let pid = start_fleet ~shards:2 path in
  Fun.protect
    ~finally:(fun () -> stop_fleet pid path)
    (fun () ->
      let fd = connect path in
      wait_fleet_up fd 2;
      (* warm one cache entry so the stream below has hot traffic *)
      send fd {|{"id": 0, "op": "profile", "app": "nn"}|};
      ignore (read_lines fd 1);
      let before = fleet_pids fd in
      Unix.kill pid Sys.sighup;
      (* hammer the fleet while it restarts shard by shard: every
         round-trip must come back ok *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      let requests = ref 0 in
      let rec pump () =
        incr requests;
        send fd
          (Printf.sprintf {|{"id": %d, "op": "profile", "app": "nn"}|}
             !requests);
        let v = parse_resp (List.hd (read_lines fd 1)) in
        check_bool
          (Printf.sprintf "request %d survived the rolling restart" !requests)
          true (resp_ok v);
        let after = fleet_pids fd in
        let all_replaced =
          List.length after = List.length before
          && List.for_all (fun p -> not (List.mem p before)) after
        in
        if not all_replaced then
          if Unix.gettimeofday () > deadline then
            Alcotest.failf "rolling restart never completed (pids %s -> %s)"
              (String.concat "," (List.map string_of_int before))
              (String.concat "," (List.map string_of_int after))
          else begin
            Unix.sleepf 0.02;
            pump ()
          end
      in
      pump ();
      wait_fleet_up fd 2;
      check_bool "traffic flowed during the restart" true (!requests > 0);
      (* and the fleet still serves correct bytes afterwards *)
      send fd {|{"id": 77, "op": "profile", "app": "nn"}|};
      let line = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_string "post-restart response is still byte-identical"
        (expected_profile_nn_line ~id:77) line)

(* ----- fleet telemetry ----- *)

let fetch_snapshot path =
  let fd = connect path in
  send fd {|{"id": "m", "op": "metrics_raw"}|};
  let v = parse_resp (List.hd (read_lines fd 1)) in
  Unix.close fd;
  Serve.Metricsenc.of_raw (field "result" v)

let snap_counter snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

let snap_hist_count snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Metrics.Histogram h) -> h.Obs.Metrics.count
  | _ -> 0

(* The supervisor's aggregated `metrics` must equal the per-shard sums.
   Pinned on counters no probe or metrics poll can move (simulator
   launches, finished profile ops): the shards are read directly first,
   then the aggregate — any in-between metrics traffic cannot change
   those. *)
let test_fleet_aggregated_metrics () =
  let path = fresh_socket_path () in
  let pid = start_fleet ~shards:2 path in
  Fun.protect
    ~finally:(fun () -> stop_fleet pid path)
    (fun () ->
      let fd = connect path in
      wait_fleet_up fd 2;
      send fd {|{"id": 1, "op": "profile", "app": "nn"}|};
      send fd {|{"id": 2, "op": "profile", "app": "bicg"}|};
      let by_id = collect fd 2 in
      List.iter
        (fun i -> check_bool "profile ok" true (resp_ok (snd (List.assoc i by_id))))
        [ 1; 2 ];
      let s0 = fetch_snapshot (path ^ ".shard-0") in
      let s1 = fetch_snapshot (path ^ ".shard-1") in
      let agg = fetch_snapshot path in
      Unix.close fd;
      check_int "aggregated sim.launches = shard sums"
        (snap_counter s0 "sim.launches" + snap_counter s1 "sim.launches")
        (snap_counter agg "sim.launches");
      check_bool "profiles actually launched simulations" true
        (snap_counter agg "sim.launches" > 0);
      check_int "aggregated profile latency count = shard sums"
        (snap_hist_count s0 "serve.op.profile.ns"
        + snap_hist_count s1 "serve.op.profile.ns")
        (snap_hist_count agg "serve.op.profile.ns");
      check_int "both profiles are in the aggregate" 2
        (snap_hist_count agg "serve.op.profile.ns"))

(* One traced profile through a 2-shard fleet: the merged Chrome trace
   holds spans from at least three process groups (supervisor, shard
   intake, shard worker) linked by the client's trace id. *)
let test_fleet_distributed_trace () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "advisor-test-spans-%d" (Unix.getpid ()))
  in
  let path = fresh_socket_path () in
  let pid = start_fleet ~shards:2 ~extra_args:[ "--trace-dir"; dir ] path in
  let stopped = ref false in
  let stop_once () =
    if not !stopped then begin
      stopped := true;
      stop_fleet pid path
    end
  in
  Fun.protect
    ~finally:(fun () ->
      stop_once ();
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      let fd = connect path in
      wait_fleet_up fd 2;
      send fd {|{"id": 1, "op": "profile", "app": "nn", "trace_id": "t-e2e-1"}|};
      let v = parse_resp (List.hd (read_lines fd 1)) in
      check_bool "traced profile ok" true (resp_ok v);
      Unix.close fd;
      (* drain the fleet so every span file is closed and flushed *)
      stop_once ();
      let m = Obs.Tracemerge.merge ~trace_id:"t-e2e-1" ~dir () in
      check_bool
        (Printf.sprintf "spans from >= 3 process groups (got %s)"
           (String.concat "," m.Obs.Tracemerge.procs))
        true
        (List.length m.Obs.Tracemerge.procs >= 3);
      check_bool "supervisor group present" true
        (List.mem "supervisor" m.Obs.Tracemerge.procs);
      check_bool "a shard group present" true
        (List.exists
           (fun p -> contains p "shard-" && not (contains p "/worker"))
           m.Obs.Tracemerge.procs);
      check_bool "a worker group present" true
        (List.exists (fun p -> contains p "/worker") m.Obs.Tracemerge.procs);
      let j = m.Obs.Tracemerge.json in
      List.iter
        (fun name ->
          check_bool (Printf.sprintf "span %s present" name) true
            (contains j name))
        [ "fleet:forward"; "fleet:await"; "serve:intake"; "serve:queue";
          "serve:profile" ];
      (* the merged trace is valid JSON *)
      match Jsonv.parse j with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "merged trace does not parse: %s" e)

(* A shard killed mid-request: the client gets a synthesized "failed"
   error, and the aggregate counts it (the pre-fix code synthesized the
   line without counting it anywhere). *)
let test_fleet_shard_death_counted () =
  let path = fresh_socket_path () in
  let pid = start_fleet ~shards:2 path in
  Fun.protect
    ~finally:(fun () -> stop_fleet pid path)
    (fun () ->
      let fd = connect path in
      wait_fleet_up fd 2;
      send fd {|{"id": 9, "op": "sleep", "ms": 30000}|};
      (* find the shard holding the sleeping request and kill it hard *)
      let fd2 = connect path in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec victim () =
        send fd2 {|{"id": "v", "op": "fleet"}|};
        let v = parse_resp (List.hd (read_lines fd2 1)) in
        let busy =
          match Jsonv.member "shards" (field "result" v) with
          | Some (Jsonv.Arr shards) ->
            List.filter_map
              (fun s ->
                match
                  (Jsonv.member "pid" s, Jsonv.member "outstanding" s)
                with
                | Some (Jsonv.Num p), Some (Jsonv.Num o) when o >= 1. ->
                  Some (int_of_float p)
                | _ -> None)
              shards
          | _ -> []
        in
        match busy with
        | p :: _ -> p
        | [] ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "no shard ever reported the sleep outstanding"
          else begin
            Unix.sleepf 0.02;
            victim ()
          end
      in
      let shard_pid = victim () in
      Unix.kill shard_pid Sys.sigkill;
      (* the supervisor synthesizes the failure for the orphaned id *)
      let v = parse_resp (List.hd (read_lines fd 1)) in
      check_string "synthesized failure code" "failed" (resp_err_code v);
      let agg = fetch_snapshot path in
      check_bool "synthesized errors counted" true
        (snap_counter agg "serve.fleet.synthesized_errors" >= 1);
      check_bool "shard failure counted" true
        (snap_counter agg "serve.fleet.shard_failures" >= 1);
      Unix.close fd;
      Unix.close fd2)

(* ----- jobq ----- *)

let test_jobq () =
  let q = Jobq.create ~cap:2 in
  check_int "capacity" 2 (Jobq.capacity q);
  check_bool "push 1" true (Jobq.try_push q 1 = `Ok);
  check_bool "push 2" true (Jobq.try_push q 2 = `Ok);
  check_bool "push 3 bounces" true (Jobq.try_push q 3 = `Full);
  check_bool "pop 1" true (Jobq.pop q = Some 1);
  check_bool "push 4 after pop" true (Jobq.try_push q 4 = `Ok);
  Jobq.close q;
  check_bool "push after close" true (Jobq.try_push q 5 = `Closed);
  check_bool "drains after close" true (Jobq.pop q = Some 2);
  check_bool "drains after close (2)" true (Jobq.pop q = Some 4);
  check_bool "then says closed" true (Jobq.pop q = None)

(* ----- bugfix: concurrent cold compiles of distinct keys overlap ----- *)

let gen_source ~tag n =
  let b = Buffer.create (n * 160) in
  for i = 0 to n - 1 do
    Printf.bprintf b
      "__global__ void k%d_%s(float* a, int n) {\n\
      \  int i = blockDim.x * blockIdx.x + threadIdx.x;\n\
      \  if (i < n) { a[i] = a[i] * %d.0 + 1.0; }\n\
       }\n"
      i tag (i + 1)
  done;
  Buffer.contents b

(* Deterministic overlap proof: misses are counted when a compile
   *claims* its key (before the work), so once the big compile's miss
   is visible it holds no lock — under the old whole-cache lock the
   small compile below would block behind it and [big_done] would
   already be true when it returned. *)
let test_cold_compiles_overlap () =
  let _, m0 = Advisor.compile_cache_stats () in
  let big_done = Atomic.make false in
  let big =
    Domain.spawn (fun () ->
        let c =
          Advisor.compile_source ~file:"overlap-big.cu" (gen_source ~tag:"big" 3000)
        in
        Atomic.set big_done true;
        List.length c.Advisor.prog.Ptx.Isa.funcs)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    snd (Advisor.compile_cache_stats ()) < m0 + 1
    && Unix.gettimeofday () < deadline
  do
    Domain.cpu_relax ()
  done;
  check_int "big compile claimed its key" (m0 + 1)
    (snd (Advisor.compile_cache_stats ()));
  let small =
    Advisor.compile_source ~file:"overlap-small.cu" (gen_source ~tag:"small" 40)
  in
  let overlapped = not (Atomic.get big_done) in
  check_int "small compile finished" 40
    (List.length small.Advisor.prog.Ptx.Isa.funcs);
  check_int "big compile finished" 3000 (Domain.join big);
  check_bool "distinct cold compiles ran concurrently" true overlapped;
  check_int "two misses total" (m0 + 2) (snd (Advisor.compile_cache_stats ()))

(* Duplicate keys still compile exactly once: the loser waits for the
   winner's slot instead of redoing (or corrupting) the work. *)
let test_same_key_compiles_once () =
  let h0, m0 = Advisor.compile_cache_stats () in
  let src = gen_source ~tag:"dup" 500 in
  let compile () = Advisor.compile_source ~file:"dup.cu" src in
  let results = Pool.map ~domains:4 (fun _ -> compile ()) [ 1; 2; 3; 4 ] in
  let first = List.hd results in
  List.iter
    (fun c -> check_bool "all callers share one compiled value" true (c == first))
    results;
  let h1, m1 = Advisor.compile_cache_stats () in
  check_int "exactly one miss" (m0 + 1) m1;
  check_bool "the rest hit the cache or waited" true (h1 - h0 <= 3)

(* ----- bugfix: pool budget safety when spawns fail or tasks raise ----- *)

let test_pool_spawn_failure_releases_budget () =
  let before = Pool.available () in
  Pool.Private.set_spawn (fun _ -> failwith "injected spawn failure");
  Fun.protect ~finally:Pool.Private.reset_spawn (fun () ->
      let r = Pool.map ~domains:6 (fun x -> x * x) [ 1; 2; 3; 4; 5 ] in
      Alcotest.(check (list int)) "results survive a failed spawn" [ 1; 4; 9; 16; 25 ] r);
  check_int "budget restored after spawn failure" before (Pool.available ())

let test_pool_partial_spawn_failure () =
  let before = Pool.available () in
  let spawned = Atomic.make 0 in
  Pool.Private.set_spawn (fun f ->
      if Atomic.fetch_and_add spawned 1 >= 1 then failwith "injected spawn failure"
      else Domain.spawn f);
  Fun.protect ~finally:Pool.Private.reset_spawn (fun () ->
      let r = Pool.map ~domains:6 (fun x -> x + 1) [ 1; 2; 3; 4; 5; 6 ] in
      Alcotest.(check (list int)) "results survive a partial spawn failure"
        [ 2; 3; 4; 5; 6; 7 ] r);
  check_int "budget restored after partial spawn failure" before (Pool.available ())

let test_pool_budget_restored_when_task_raises () =
  let before = Pool.available () in
  (match Pool.map ~domains:4 (fun x -> if x = 3 then failwith "task blew up" else x) [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "the task exception must propagate"
  | exception Failure m -> check_string "first exception re-raised" "task blew up" m);
  check_int "budget restored after task exception" before (Pool.available ())

let test_spawn_group_accounting () =
  let before = Pool.available () in
  let hits = Atomic.make 0 in
  let g = Pool.spawn_group ~want:3 (fun () -> Atomic.incr hits) in
  check_bool "spawned some workers" true (Pool.group_size g >= 1);
  check_int "budget debited while the group lives"
    (before - Pool.group_size g)
    (Pool.available ());
  let size = Pool.group_size g in
  Pool.join_group g;
  check_int "every worker ran" size (Atomic.get hits);
  check_int "budget restored after join" before (Pool.available ())

(* ----- bugfix: malformed env vars warn and fall back ----- *)

let test_env_fallback () =
  Unix.putenv "CUDAADVISOR_MAX_WARP_INSTRS" "a lot";
  check_int "garbage instr budget falls back to the default"
    Gpusim.Gpu.default_max_warp_insts
    (Gpusim.Gpu.max_warp_insts ());
  Unix.putenv "CUDAADVISOR_MAX_WARP_INSTRS" "-3";
  check_int "non-positive instr budget falls back to the default"
    Gpusim.Gpu.default_max_warp_insts
    (Gpusim.Gpu.max_warp_insts ());
  Unix.putenv "CUDAADVISOR_MAX_WARP_INSTRS"
    (string_of_int Gpusim.Gpu.default_max_warp_insts);
  Unix.putenv "POOL_DOMAINS" "over 9000!";
  (* the old behavior was an int_of_string abort inside map *)
  Alcotest.(check (list int)) "pool still maps with a garbage POOL_DOMAINS"
    [ 2; 4; 6 ]
    (Pool.map (fun x -> x * 2) [ 1; 2; 3 ]);
  Unix.putenv "POOL_DOMAINS" (string_of_int (Domain.recommended_domain_count ()));
  check_int "valid env values are honored" 1234
    (Obs.Env.positive_int "CUDAADVISOR_TEST_ENV_XYZ" ~default:(fun () -> 1234))

(* ----- the evaluate batch op -----

   The tournament endpoint: validation of the variants array, served
   responses byte-identical to a direct [Tune.Evaluate.run_batch],
   per-variant cache hits on resubmission (zero new simulator
   launches), and the per-request deadline as a whole-batch budget
   (partial results, never a silent truncation). *)

let evaluate_request ~id ?timeout_ms ~baseline variants =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let var (name, source, block_x, bypass) =
    Json.Obj
      ([ ("name", Json.String name) ]
      @ opt "source" (fun s -> Json.String s) source
      @ opt "block_x" (fun b -> Json.Int b) block_x
      @ opt "bypass_warps" (fun b -> Json.Int b) bypass)
  in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Int id);
          ("op", Json.String "evaluate");
          ("app", Json.String "nn");
          ("baseline", Json.String baseline);
          ("variants", Json.List (List.map var variants)) ]
       @ opt "timeout_ms" (fun ms -> Json.Int ms) timeout_ms))

let test_evaluate_validate () =
  let req line =
    match Protocol.parse_request line with
    | Ok r -> r
    | Error (_, _, m) -> Alcotest.failf "setup parse: %s" m
  in
  let code line =
    match Router.validate (req line) with Ok () -> "ok" | Error (c, _) -> c
  in
  check_string "no variants" "bad_request" (code {|{"op": "evaluate", "app": "nn"}|});
  check_string "empty variants" "bad_request"
    (code {|{"op": "evaluate", "app": "nn", "variants": []}|});
  check_string "nameless variants get positional ids" "ok"
    (code {|{"op": "evaluate", "app": "nn", "variants": [{}, {"block_x": 128}]}|});
  check_string "duplicate names" "bad_request"
    (code
       {|{"op": "evaluate", "app": "nn", "variants": [{"name": "a"}, {"name": "a"}]}|});
  check_string "baseline must name a variant" "bad_request"
    (code
       {|{"op": "evaluate", "app": "nn", "baseline": "zz", "variants": [{"name": "a"}]}|});
  check_string "non-positive block_x" "bad_request"
    (code
       {|{"op": "evaluate", "app": "nn", "variants": [{"name": "a", "block_x": 0}]}|});
  check_string "negative bypass_warps" "bad_request"
    (code
       {|{"op": "evaluate", "app": "nn", "variants": [{"name": "a", "bypass_warps": -1}]}|});
  (* non-object variants are already rejected by the protocol parser *)
  (match
     Protocol.parse_request {|{"op": "evaluate", "app": "nn", "variants": [3]}|}
   with
  | Error (_, c, _) -> check_string "variants must be objects" "bad_request" c
  | Ok _ -> Alcotest.fail "non-object variant should not parse");
  let big =
    Printf.sprintf {|{"op": "evaluate", "app": "nn", "variants": [%s]}|}
      (String.concat ", "
         (List.init 65 (fun i -> Printf.sprintf {|{"name": "v%d"}|} i)))
  in
  check_string "oversized batch" "bad_request" (code big)

(* The served batch must carry the same bytes a one-shot run of the
   tournament engine produces, spliced into the response envelope. *)
let test_evaluate_served_matches_direct () =
  let w = Workloads.Registry.find "nn" in
  let arch = Option.get (Gpusim.Arch.of_name "kepler") in
  let specs =
    [ Tune.Evaluate.baseline_spec;
      { Tune.Evaluate.baseline_spec with
        Tune.Evaluate.sp_name = "bypass4";
        sp_bypass_warps = Some 4 } ]
  in
  let raw =
    Json.to_string (Tune.Evaluate.run_batch ~baseline:"base" ~arch w specs)
  in
  let expected = Protocol.ok_line_raw ~id:(Json.Int 9) ~op:"evaluate" raw in
  with_server ~workers:2 (fun path _srv ->
      let fd = connect path in
      send fd
        (evaluate_request ~id:9 ~baseline:"base"
           [ ("base", None, None, None); ("bypass4", None, None, Some 4) ]);
      let line = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_string "served batch == one-shot run_batch" expected line)

(* An 8-variant tournament; resubmitting the identical batch is
   answered entirely from per-variant cache entries: byte-identical
   response, simulator launch counter flat. *)
let test_evaluate_resubmit_cache_hits () =
  let w = Workloads.Registry.find "nn" in
  let commented i =
    Some (w.Workloads.Common.source ^ Printf.sprintf "\n// tournament seat %d\n" i)
  in
  let variants =
    [ ("base", None, None, None);
      ("bypass4", None, None, Some 4);
      ("block128", None, Some 128, None);
      ("block512", None, Some 512, None);
      ("seat4", commented 4, None, None);
      ("seat5", commented 5, None, None);
      ("seat6", commented 6, None, None);
      ("seat7", commented 7, None, None) ]
  in
  with_server ~workers:2 ~cache:Serve.Rescache.default_config (fun path _srv ->
      let fd = connect path in
      let line = evaluate_request ~id:2 ~baseline:"base" variants in
      send fd line;
      let cold = List.hd (read_lines fd 1) in
      let v = parse_resp cold in
      check_bool "cold batch ok" true (resp_ok v);
      (match Jsonv.member "variants" (field "result" v) with
      | Some (Jsonv.Arr vs) -> check_int "all 8 variants" 8 (List.length vs)
      | _ -> Alcotest.fail "no variants array");
      (match Jsonv.member "ranking" (field "result" v) with
      | Some (Jsonv.Arr rs) -> check_int "full ranking" 8 (List.length rs)
      | _ -> Alcotest.fail "no ranking array");
      let launches0 = metric_counter "sim.launches" in
      send fd line;
      let hot = List.hd (read_lines fd 1) in
      Unix.close fd;
      check_string "resubmitted batch is byte-identical" cold hot;
      check_int "resubmission launched zero simulations" launches0
        (metric_counter "sim.launches"))

(* The request deadline is a whole-batch budget: cached variants are
   still served (lookup precedes the deadline poll), fresh variants
   come back as per-variant "deadline" errors, and every submitted
   variant appears in the (ok) response. *)
let test_evaluate_deadline_partial_batch () =
  let w = Workloads.Registry.find "nn" in
  let commented tag =
    Some (w.Workloads.Common.source ^ Printf.sprintf "\n// %s\n" tag)
  in
  with_server ~workers:2 ~cache:Serve.Rescache.default_config (fun path _srv ->
      let fd = connect path in
      send fd
        (evaluate_request ~id:0 ~baseline:"base"
           [ ("base", None, None, None); ("warm", commented "warm", None, None) ]);
      check_bool "warm-up batch ok" true
        (resp_ok (parse_resp (List.hd (read_lines fd 1))));
      send fd
        (evaluate_request ~id:1 ~timeout_ms:1 ~baseline:"base"
           [ ("base", None, None, None);
             ("warm", commented "warm", None, None);
             ("cold-a", commented "cold-a", None, None);
             ("cold-b", commented "cold-b", None, None) ]);
      let v = parse_resp (List.hd (read_lines fd 1)) in
      Unix.close fd;
      check_bool "deadline batch still answers ok" true (resp_ok v);
      let variants =
        match Jsonv.member "variants" (field "result" v) with
        | Some (Jsonv.Arr vs) -> vs
        | _ -> Alcotest.fail "no variants array"
      in
      check_int "no variant silently dropped" 4 (List.length variants);
      let status_of name =
        match
          List.find_opt
            (fun var -> Jsonv.member "name" var = Some (Jsonv.Str name))
            variants
        with
        | Some var -> (
          match
            Option.bind (Jsonv.member "result" var) (Jsonv.member "status")
          with
          | Some (Jsonv.Str s) -> s
          | _ -> Alcotest.failf "variant %s has no status" name)
        | None -> Alcotest.failf "variant %s missing" name
      in
      check_string "cached baseline served past the deadline" "ok"
        (status_of "base");
      check_string "cached variant served past the deadline" "ok"
        (status_of "warm");
      check_string "fresh variant reports its deadline" "deadline"
        (status_of "cold-a");
      check_string "fresh variant reports its deadline" "deadline"
        (status_of "cold-b"))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse full request" `Quick test_parse_ok;
          Alcotest.test_case "parse defaults" `Quick test_parse_defaults;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "response lines" `Quick test_response_lines;
        ] );
      ( "router",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "ping and list" `Quick test_dispatch_ping_list;
          Alcotest.test_case "bad op fields" `Quick test_dispatch_bad_fields;
        ] );
      ( "jobq",
        [ Alcotest.test_case "bounded, closeable" `Quick test_jobq ] );
      ( "daemon",
        [
          Alcotest.test_case "round-trip every op" `Quick test_roundtrip_every_op;
          Alcotest.test_case "served profile == one-shot" `Quick
            test_served_profile_matches_oneshot;
          Alcotest.test_case "malformed and unknown requests" `Quick
            test_malformed_and_unknown_over_socket;
          Alcotest.test_case "8 concurrent profiles" `Quick test_concurrent_profiles;
          Alcotest.test_case "overloaded backpressure" `Quick test_overloaded;
          Alcotest.test_case "timeout leaves the daemon alive" `Quick
            test_timeout_leaves_daemon_alive;
          Alcotest.test_case "graceful shutdown drains" `Quick test_shutdown_drains;
        ] );
      ( "rescache",
        [
          Alcotest.test_case "hot hit: byte-identical, zero launches" `Quick
            test_cache_hit_byte_identical_no_launches;
          Alcotest.test_case "profile_fast: static tier, zero launches" `Quick
            test_profile_fast_roundtrip_no_launches;
          Alcotest.test_case "defaults and field order share one entry" `Quick
            test_cache_defaults_and_reordering_share_entry;
          Alcotest.test_case "LRU entry and byte bounds" `Quick
            test_lru_eviction_bounds;
          Alcotest.test_case "disk tier survives a restart" `Quick
            test_disk_tier_restart_roundtrip;
          Alcotest.test_case "corrupt cache files are skipped" `Quick
            test_corrupt_cache_files_skipped;
        ] );
      ( "cachekey",
        [
          QCheck_alcotest.to_alcotest qcheck_key_stable_under_reordering;
          QCheck_alcotest.to_alcotest qcheck_canonical_source_whitespace;
          Alcotest.test_case "request canonicalization" `Quick
            test_cachekey_of_request;
          Alcotest.test_case "answer tier separates entries" `Quick
            test_cachekey_tier_separation;
          Alcotest.test_case "consistent hashing moves only lost keys" `Quick
            test_chash_stability;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "stale socket file is reclaimed" `Quick
            test_stale_socket_recovered;
          Alcotest.test_case "live socket is refused" `Quick
            test_live_socket_refused;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics, metrics_raw, metrics_text ops" `Quick
            test_metrics_ops;
          Alcotest.test_case "prometheus exposition over TCP" `Quick
            test_exposition_endpoint;
          Alcotest.test_case "access log with sampling" `Quick
            test_access_log_sampling;
          Alcotest.test_case "SLO breach accounting" `Quick test_slo_accounting;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "variants validation" `Quick test_evaluate_validate;
          Alcotest.test_case "served batch == one-shot" `Quick
            test_evaluate_served_matches_direct;
          Alcotest.test_case "resubmission hits per-variant cache" `Quick
            test_evaluate_resubmit_cache_hits;
          Alcotest.test_case "deadline yields a partial batch" `Quick
            test_evaluate_deadline_partial_batch;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "2-shard fleet end to end" `Quick
            test_fleet_end_to_end;
          Alcotest.test_case "rolling restart drops nothing" `Quick
            test_fleet_rolling_restart_drops_nothing;
          Alcotest.test_case "aggregated metrics equal shard sums" `Quick
            test_fleet_aggregated_metrics;
          Alcotest.test_case "distributed trace merges >= 3 processes" `Quick
            test_fleet_distributed_trace;
          Alcotest.test_case "shard death is counted and synthesized" `Quick
            test_fleet_shard_death_counted;
        ] );
      ( "bugfixes",
        [
          Alcotest.test_case "cold compiles of distinct keys overlap" `Quick
            test_cold_compiles_overlap;
          Alcotest.test_case "same key compiles once" `Quick
            test_same_key_compiles_once;
          Alcotest.test_case "spawn failure releases budget" `Quick
            test_pool_spawn_failure_releases_budget;
          Alcotest.test_case "partial spawn failure" `Quick
            test_pool_partial_spawn_failure;
          Alcotest.test_case "task exception releases budget" `Quick
            test_pool_budget_restored_when_task_raises;
          Alcotest.test_case "worker group accounting" `Quick
            test_spawn_group_accounting;
          Alcotest.test_case "malformed env vars fall back" `Quick test_env_fallback;
        ] );
    ]
