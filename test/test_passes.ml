(* Tests for the instrumentation engine and the cleanup passes. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample =
  {|
__device__ float helper(float x) { return x * 2.0f; }
__global__ void k(float* a, float* b, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    b[tid] = helper(a[tid]) + 1.0f;
  }
}
|}

let count_hook_calls ?(name_prefix = "__ca_") (m : Bitc.Irmod.t) =
  List.fold_left
    (fun acc f ->
      Bitc.Func.fold_instrs f acc (fun acc _ (i : Bitc.Instr.t) ->
          match i.kind with
          | Bitc.Instr.Call { callee; _ }
            when String.length callee >= String.length name_prefix
                 && String.sub callee 0 (String.length name_prefix) = name_prefix ->
            acc + 1
          | _ -> acc))
    0 m.funcs

let count_global_mem_ops (m : Bitc.Irmod.t) =
  List.fold_left
    (fun acc f ->
      Bitc.Func.fold_instrs f acc (fun acc _ (i : Bitc.Instr.t) ->
          let is_global ptr =
            match Bitc.Func.value_ty f ptr with
            | Bitc.Types.Ptr (_, Bitc.Types.Global) -> true
            | _ -> false
          in
          match i.kind with
          | Bitc.Instr.Load p when is_global p -> acc + 1
          | Bitc.Instr.Store { ptr; _ } when is_global ptr -> acc + 1
          | Bitc.Instr.Atomic_add { ptr; _ } when is_global ptr -> acc + 1
          | _ -> acc))
    0 m.funcs

let count_blocks (m : Bitc.Irmod.t) =
  List.fold_left
    (fun acc (f : Bitc.Func.t) ->
      match f.fkind with
      | Bitc.Func.Kernel | Bitc.Func.Device -> acc + List.length f.blocks
      | Bitc.Func.Host -> acc)
    0 m.funcs

let test_mem_hooks_count () =
  let m = Minicuda.Frontend.compile ~file:"t.cu" sample in
  let mem_ops = count_global_mem_ops m in
  ignore (Passes.Instrument.run ~options:Passes.Instrument.memory_only m);
  (* one Record call per global memory op (call push/pop hooks are
     mandatory and counted separately) *)
  let hooks = count_hook_calls ~name_prefix:"__ca_record_mem" m in
  check_int "one hook per global access" mem_ops hooks;
  check "module still verifies" true (Result.is_ok (Bitc.Verify.check m))

let test_bb_hooks_count () =
  let m = Minicuda.Frontend.compile ~file:"t.cu" sample in
  let blocks = count_blocks m in
  let r = Passes.Instrument.run ~options:Passes.Instrument.control_flow_only m in
  check_int "one hook per block" blocks
    (count_hook_calls ~name_prefix:"__ca_record_bb" m);
  check_int "manifest registers all blocks" blocks
    (Passes.Manifest.num_blocks r.manifest)

let test_mandatory_call_hooks () =
  let m = Minicuda.Frontend.compile ~file:"t.cu" sample in
  let r = Passes.Instrument.run ~options:Passes.Instrument.nothing m in
  (* the call to helper gets a push and a pop *)
  check_int "callsites recorded" 1 (Passes.Manifest.num_callsites r.manifest);
  check_int "push+pop hooks" 2 (count_hook_calls m);
  let cs = Passes.Manifest.callsite r.manifest 0 in
  Alcotest.(check string) "caller" "k" cs.caller;
  Alcotest.(check string) "callee" "helper" cs.callee;
  check "call loc recorded" true (cs.call_loc.Bitc.Loc.line > 0)

let test_local_accesses_not_instrumented () =
  let src = "__global__ void k(int n) { int x = n; x = x + 1; }" in
  let m = Minicuda.Frontend.compile ~file:"t.cu" src in
  ignore (Passes.Instrument.run ~options:Passes.Instrument.memory_only m);
  check_int "allocas produce no Record hooks" 0
    (count_hook_calls ~name_prefix:"__ca_record_mem" m)

let test_arith_hooks () =
  let src = "__global__ void k(float* a) { a[0] = a[1] * 2.0f + 1.0f; }" in
  let m = Minicuda.Frontend.compile ~file:"t.cu" src in
  ignore
    (Passes.Instrument.run
       ~options:
         { Passes.Instrument.memory = false; control_flow = false; arithmetic = true; sharing = false }
       m);
  (* fmul, fadd and the tid arithmetic: at least the two float ops *)
  check "arith hooks present" true (count_hook_calls m >= 2);
  check "module still verifies" true (Result.is_ok (Bitc.Verify.check m))

let test_instrumented_runs_and_matches_native () =
  (* instrumentation must not change results *)
  let src =
    {|
__global__ void k(float* a, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) { a[tid] = a[tid] * 3.0f; }
}
|}
  in
  let run instrument =
    let out = ref 0 in
    let dev, _, _ =
      Testutil.run_kernel ~instrument ~kernel:"k" ~block:(64, 1)
        ~setup:(fun dev ->
          let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 64) in
          out := d;
          for i = 0 to 63 do
            Gpusim.Devmem.write_f32 dev.Gpusim.Gpu.devmem (d + (4 * i)) (float_of_int i)
          done;
          [ Gpusim.Value.I d; Gpusim.Value.I 64 ])
        src
    in
    Testutil.f32s dev !out 64
  in
  check "results identical" true (run true = run false)

(* ----- dce ----- *)

let test_dce_removes_dead_code () =
  let m =
    Minicuda.Frontend.compile ~file:"t.cu"
      "__global__ void k(float* a) { int unused = 1 + 2; a[0] = 1.0f; }"
  in
  (* lowering stores 1+2 into an alloca: kill the store's value chain by
     building a dead pure chain directly *)
  let f = Bitc.Irmod.find_func_exn m "k" in
  let b = Bitc.Builder.create f in
  (* append dead arithmetic into the entry block (before terminator) *)
  let dead1 = Bitc.Builder.binop b Bitc.Instr.Add (Bitc.Value.Int 1) (Bitc.Value.Int 2) in
  let _dead2 = Bitc.Builder.binop b Bitc.Instr.Mul dead1 (Bitc.Value.Int 3) in
  let removed = Passes.Dce.run m in
  check "removed at least the dead chain" true (removed >= 2);
  check "still verifies" true (Result.is_ok (Bitc.Verify.check m))

let test_dce_preserves_semantics () =
  let src =
    "__global__ void k(int* out, int n) { int t = n * 2; out[0] = t + 1; }"
  in
  let run with_dce =
    let m = Minicuda.Frontend.compile ~file:"t.cu" src in
    if with_dce then ignore (Passes.Dce.run m);
    let prog = Ptx.Codegen.gen_module m in
    let dev = Gpusim.Gpu.create_device (Gpusim.Arch.kepler_k40c ()) in
    let d = Gpusim.Devmem.malloc dev.devmem 64 in
    ignore
      (Gpusim.Gpu.launch dev ~prog ~kernel:"k" ~grid:(1, 1) ~block:(1, 1)
         ~args:[ Gpusim.Value.I d; Gpusim.Value.I 21 ] ());
    Gpusim.Devmem.read_i32 dev.devmem d
  in
  check_int "same result" (run false) (run true);
  check_int "expected value" 43 (run true)

(* ----- constfold ----- *)

let test_constfold_folds () =
  let m =
    Minicuda.Frontend.compile ~file:"t.cu"
      "__global__ void k(int* out) { out[0] = 2 * 3 + 4; }"
  in
  let folded = Passes.Constfold.run m in
  check "folded something" true (folded >= 2);
  check "still verifies" true (Result.is_ok (Bitc.Verify.check m))

let test_constfold_preserves_semantics () =
  let src = "__global__ void k(int* out, int n) { out[0] = (2 * 3 + n) * (10 - 4); }" in
  let run fold =
    let m = Minicuda.Frontend.compile ~file:"t.cu" src in
    if fold then ignore (Passes.Constfold.run m);
    let prog = Ptx.Codegen.gen_module m in
    let dev = Gpusim.Gpu.create_device (Gpusim.Arch.kepler_k40c ()) in
    let d = Gpusim.Devmem.malloc dev.devmem 64 in
    ignore
      (Gpusim.Gpu.launch dev ~prog ~kernel:"k" ~grid:(1, 1) ~block:(1, 1)
         ~args:[ Gpusim.Value.I d; Gpusim.Value.I 5 ] ());
    Gpusim.Devmem.read_i32 dev.devmem d
  in
  check_int "same result" (run false) (run true);
  check_int "expected" 66 (run true)

let test_constfold_no_division_by_zero_fold () =
  let m =
    Minicuda.Frontend.compile ~file:"t.cu"
      "__global__ void k(int* out, int n) { if (n > 0) { out[0] = 1 / 0; } }"
  in
  (* folding must leave the trapping division alone *)
  ignore (Passes.Constfold.run m);
  check "still verifies" true (Result.is_ok (Bitc.Verify.check m))

let test_pass_manager_verifies_between_passes () =
  let m = Minicuda.Frontend.compile ~file:"t.cu" sample in
  let broken = Passes.Pass.make ~name:"breaker" (fun m ->
      let f = Bitc.Irmod.find_func_exn m "k" in
      (Bitc.Func.entry f).term <- Some (Bitc.Instr.Br "nowhere"))
  in
  check "pass manager catches broken pass" true
    (match Passes.Pass.run_all [ broken ] m with
    | () -> false
    | exception Passes.Pass.Pass_error { pass = "breaker"; _ } -> true)

(* one hook per executed global access at run time, too *)
let test_hook_event_counts () =
  let src =
    "__global__ void k(float* a, int n) { int tid = threadIdx.x; if (tid < n) { a[tid] = a[tid] + 1.0f; } }"
  in
  let events = ref 0 in
  let sink (_ : Gpusim.Hookev.t) = incr events in
  let _, result, _ =
    Testutil.run_kernel ~instrument:true ~sink ~kernel:"k" ~block:(32, 1)
      ~setup:(fun dev ->
        let d = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 32) in
        [ Gpusim.Value.I d; Gpusim.Value.I 32 ])
      src
  in
  check "every hook produced an event" true (!events = result.stats.hook_calls);
  check "events happened" true (!events > 0)

let () =
  Alcotest.run "passes"
    [
      ( "instrument",
        [ Alcotest.test_case "memory hooks" `Quick test_mem_hooks_count;
          Alcotest.test_case "basic-block hooks" `Quick test_bb_hooks_count;
          Alcotest.test_case "call push/pop" `Quick test_mandatory_call_hooks;
          Alcotest.test_case "locals untouched" `Quick test_local_accesses_not_instrumented;
          Alcotest.test_case "arith hooks" `Quick test_arith_hooks;
          Alcotest.test_case "semantics preserved" `Quick test_instrumented_runs_and_matches_native;
          Alcotest.test_case "runtime events" `Quick test_hook_event_counts ] );
      ( "cleanup passes",
        [ Alcotest.test_case "dce removes" `Quick test_dce_removes_dead_code;
          Alcotest.test_case "dce preserves semantics" `Quick test_dce_preserves_semantics;
          Alcotest.test_case "constfold folds" `Quick test_constfold_folds;
          Alcotest.test_case "constfold preserves semantics" `Quick test_constfold_preserves_semantics;
          Alcotest.test_case "constfold leaves div-by-zero" `Quick test_constfold_no_division_by_zero_fold;
          Alcotest.test_case "pass manager verification" `Quick test_pass_manager_verifies_between_passes ] );
    ]
