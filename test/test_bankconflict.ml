(* Shared-memory bank-conflict model: exact degrees on the stride
   microbenchmarks with source-line attribution, replay-charging
   semantics of the opt-in [bankmodel] flag (including byte-identity of
   the report with the flag off), occupancy granularity rounding,
   shared out-of-bounds traps, and a QCheck calibration of the static
   estimator's predicted degree against the simulator. *)

module BC = Analysis.Bank_conflict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let arch () = Gpusim.Arch.kepler_k40c ()

let profile ?(bankmodel = true) name =
  Advisor.profile ~bankmodel ~arch:(arch ()) (Workloads.Registry.find name)

(* ----- exact degrees on the microbenchmarks ----- *)

let test_stride1_conflict_free () =
  let bc = Advisor.bank_conflict (profile "bank_stride1") in
  check_int "shared accesses (1 store + 1 load)" 2 bc.BC.shared_accesses;
  check_int "conflicting accesses" 0 bc.BC.conflict_accesses;
  check_int "replays" 0 bc.BC.replays;
  check_int "wasted cycles" 0 bc.BC.wasted_cycles;
  check_int "max degree" 1 (BC.max_degree bc);
  check_int "no conflicting sites" 0 (List.length bc.BC.sites)

let test_stride32_32way () =
  let a = arch () in
  let bc = Advisor.bank_conflict (profile "bank_stride32") in
  check_int "shared accesses (1 store + 1 load)" 2 bc.BC.shared_accesses;
  check_int "every access conflicts" 2 bc.BC.conflict_accesses;
  check_int "max degree" 32 (BC.max_degree bc);
  (* 32 lanes on one bank: 31 replays per access *)
  check_int "replays" 62 bc.BC.replays;
  check_int "wasted cycles"
    (62 * a.Gpusim.Arch.shared_replay)
    bc.BC.wasted_cycles;
  (* source attribution: the store on line 5, the load on line 7 *)
  let sites =
    List.sort compare
      (List.map
         (fun (s : BC.site) -> (s.site_loc.Bitc.Loc.line, s.site_kind))
         bc.BC.sites)
  in
  Alcotest.(check (list (pair int string)))
    "per-line sites"
    [ (5, "store"); (7, "load") ]
    sites;
  List.iter
    (fun (s : BC.site) ->
      check "site file" true (s.site_loc.Bitc.Loc.file = "bank_stride32.cu");
      check_int "site degree" 32 s.site_max_degree;
      check_int "site replays" 31 s.site_replays)
    bc.BC.sites

(* ----- replay charging is opt-in and additive ----- *)

let native ?bankmodel name =
  fst
    (Advisor.run_native ?bankmodel ~arch:(arch ())
       (Workloads.Registry.find name))

let test_charging_opt_in () =
  let off = native "bank_stride32" in
  check_int "flag default = flag off" off (native ~bankmodel:false "bank_stride32");
  check "conflicts cost cycles under the model" true
    (native ~bankmodel:true "bank_stride32" > off);
  (* conflict-free code is unaffected even with the model on *)
  check_int "stride-1 unchanged under the model" (native "bank_stride1")
    (native ~bankmodel:true "bank_stride1")

(* With the flag off the profile report must be byte-identical to one
   that never heard of the bank model: same bytes as the default, and
   no bank_conflict section leaks in. *)
let test_report_byte_identity_flag_off () =
  let report session =
    Analysis.Report.to_string
      (Analysis.Report.of_profile ~app:"bank_stride32"
         ~arch_name:(arch ()).Gpusim.Arch.name ~line_size:128
         session.Advisor.profiler)
  in
  let default_bytes = report (profile ~bankmodel:false "bank_stride32") in
  check "no bank_conflict section with the flag off" false
    (Testutil.contains default_bytes "bank_conflict");
  (* and the flag only changes simulated timing, never the report shape:
     an opted-in session serializes identically unless the caller
     attaches the analysis explicitly *)
  let on_bytes = report (profile ~bankmodel:true "bank_stride32") in
  check "bank_conflict only appears when explicitly attached" false
    (Testutil.contains on_bytes "bank_conflict")

(* ----- occupancy: shared allocations round to the granularity ----- *)

let test_occupancy_granularity () =
  let a = arch () in
  let g = a.Gpusim.Arch.shared_alloc_granularity in
  check_int "Kepler granularity" 256 g;
  let lim b = Gpusim.Gpu.occupancy_limit a ~warps_per_cta:1 ~shared_bytes:b in
  check_int "1 B costs a full granule" (lim g) (lim 1);
  check_int "g+1 B costs two granules" (lim (2 * g)) (lim (g + 1));
  (* a size where rounding changes the CTA count: pick the largest b
     with floor(shared/b) > floor(shared/round(b)) *)
  let shared = a.Gpusim.Arch.shared_mem_per_sm in
  let round b = (b + g - 1) / g * g in
  let b = 14 * g + 16 in
  check "test input actually exercises rounding" true
    (shared / b > shared / round b);
  let expected =
    min a.Gpusim.Arch.max_ctas_per_sm
      (min a.Gpusim.Arch.max_warps_per_sm (shared / round b))
  in
  check_int "occupancy uses the rounded size" expected (lim b);
  check "fewer CTAs than the unrounded division" true (lim b < shared / b)

let raises_launch_error f =
  match f () with
  | (_ : int) -> false
  | exception Gpusim.Gpu.Launch_error _ -> true

let test_occupancy_impossible_cta () =
  let a = arch () in
  check "too many warps" true
    (raises_launch_error (fun () ->
         Gpusim.Gpu.occupancy_limit a
           ~warps_per_cta:(a.Gpusim.Arch.max_warps_per_sm + 1)
           ~shared_bytes:0));
  check "shared allocation larger than the SM array" true
    (raises_launch_error (fun () ->
         Gpusim.Gpu.occupancy_limit a ~warps_per_cta:1
           ~shared_bytes:(a.Gpusim.Arch.shared_mem_per_sm + 1)));
  (* the SM array is granule-aligned, so the largest fitting request is
     exactly one full array; one byte more must be rejected even though
     it rounds to just one extra granule *)
  check "exactly the SM array still fits" true
    (Gpusim.Gpu.occupancy_limit a ~warps_per_cta:1
       ~shared_bytes:a.Gpusim.Arch.shared_mem_per_sm
    = 1)

(* a launch whose static __shared__ arrays exceed the SM must abort *)
let test_launch_impossible_shared () =
  let src =
    {|
__global__ void big(float* out) {
  __shared__ float buf[16384];
  buf[threadIdx.x] = 1.0f;
  out[threadIdx.x] = buf[threadIdx.x];
}
|}
  in
  check "64 KB __shared__ cannot launch on a 48 KB SM" true
    (match
       Testutil.run_kernel ~kernel:"big"
         ~setup:(fun dev ->
           [ Gpusim.Value.I (Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 256) ])
         src
     with
    | _ -> false
    | exception Gpusim.Gpu.Launch_error _ -> true)

(* ----- shared out-of-bounds accesses trap with source attribution ----- *)

let oob_src =
  {|
__global__ void oob(float* out, int i) {
  __shared__ float buf[32];
  buf[i] = 1.0f;
  out[threadIdx.x] = buf[0];
}
|}

let run_oob i =
  Testutil.run_kernel ~kernel:"oob"
    ~setup:(fun dev ->
      [ Gpusim.Value.I (Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem 256);
        Gpusim.Value.I i ])
    oob_src

let test_shared_oob_trap () =
  (* in bounds: runs to completion *)
  check "last element is fine" true (match run_oob 31 with _ -> true);
  match run_oob 32 with
  | _ -> Alcotest.fail "one-past-the-end store must trap"
  | exception Gpusim.Exec.Trap { loc; msg; _ } ->
    check_int "trap attributed to the store line" 4 loc.Bitc.Loc.line;
    check "trap names the shared store" true
      (Testutil.contains msg "shared store out of bounds")

let test_shared_oob_negative_trap () =
  match run_oob (-1) with
  | _ -> Alcotest.fail "negative index must trap"
  | exception Gpusim.Exec.Trap { loc; _ } ->
    check_int "trap attributed to the store line" 4 loc.Bitc.Loc.line

(* ----- QCheck: static prediction calibrated against the simulator ----- *)

let stride_src s =
  Printf.sprintf
    {|
__global__ void k(float* out) {
  __shared__ float buf[2048];
  int tx = threadIdx.x;
  buf[%d * tx] = 1.0f * tx;
  __syncthreads();
  out[tx] = buf[%d * tx];
}
|}
    s s

(* Both accesses share the stride, so the run-wide degree is
   [replays / accesses + 1]. *)
let simulated_degree src =
  let m = Minicuda.Frontend.compile ~file:"bank.cu" src in
  let prog = Ptx.Codegen.gen_module m in
  let dev = Gpusim.Gpu.create_device (arch ()) in
  let out = Gpusim.Devmem.malloc dev.Gpusim.Gpu.devmem (4 * 32) in
  let r =
    Gpusim.Gpu.launch ~bankmodel:true dev ~prog ~kernel:"k" ~grid:(1, 1)
      ~block:(32, 1)
      ~args:[ Gpusim.Value.I out ]
      ()
  in
  let s = r.Gpusim.Gpu.stats in
  check_int "two shared accesses" 2 s.Gpusim.Stats.shared_accesses;
  (s.Gpusim.Stats.shared_conflict_replays / 2) + 1

let static_degree src =
  let e =
    Passes.Estimate.run ~block:(32, 1) ~line_size:128
      (Minicuda.Frontend.compile ~file:"bank.cu" src)
  in
  check_int "both shared sites extracted" 2
    (List.length e.Passes.Estimate.shared_sites);
  List.iter
    (fun (s : Passes.Estimate.shared_site) ->
      check "constant stride is Exact" true
        (s.sh_confidence = Passes.Estimate.Exact))
    e.Passes.Estimate.shared_sites;
  e.Passes.Estimate.bank_degree

let qcheck_static_matches_sim =
  QCheck2.Test.make
    ~name:"static predicted degree = simulated degree (constant strides)"
    ~count:20
    QCheck2.Gen.(int_range 0 40)
    (fun s ->
      let src = stride_src s in
      static_degree src = simulated_degree src)

let () =
  Alcotest.run "bankconflict"
    [
      ( "microbenchmarks",
        [
          Alcotest.test_case "stride 1 conflict-free" `Quick
            test_stride1_conflict_free;
          Alcotest.test_case "stride 32 is a 32-way conflict" `Quick
            test_stride32_32way;
        ] );
      ( "bankmodel flag",
        [
          Alcotest.test_case "charging is opt-in and additive" `Quick
            test_charging_opt_in;
          Alcotest.test_case "report bytes identical with the flag off" `Quick
            test_report_byte_identity_flag_off;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "granularity rounding" `Quick
            test_occupancy_granularity;
          Alcotest.test_case "impossible CTA shapes" `Quick
            test_occupancy_impossible_cta;
          Alcotest.test_case "launch rejects oversized __shared__" `Quick
            test_launch_impossible_shared;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "one-past-the-end store traps" `Quick
            test_shared_oob_trap;
          Alcotest.test_case "negative index traps" `Quick
            test_shared_oob_negative_trap;
        ] );
      ( "calibration",
        [ QCheck_alcotest.to_alcotest qcheck_static_matches_sim ] );
    ]
