(* Golden-metric regression tests: the fig4/fig5/table3 numbers for two
   small workloads (nn, bfs) on Kepler 16KB, pinned from the seed
   list-based pipeline.  The packed trace-buffer pipeline must
   reproduce every count bit-for-bit — these are deterministic program
   properties, not timing. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let arch = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()

let session =
  let cache = Hashtbl.create 4 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some s -> s
    | None ->
      let s = Advisor.profile ~arch (Workloads.Registry.find name) in
      Hashtbl.replace cache name s;
      s

type golden = {
  app : string;
  (* fig4: reuse distance *)
  rd_samples : int;
  rd_finite : int;
  rd_infinite : int;
  rd_mean : float;
  rd_max : int;
  rd_histogram : int list; (* bucket order of Reuse_distance.buckets *)
  (* fig5: memory divergence at 128B lines *)
  md_total : int;
  md_degree : float;
  md_distribution : int list; (* index 0..32 *)
  (* table3: branch divergence *)
  bd_divergent : int;
  bd_total : int;
}

let goldens =
  [
    {
      app = "nn";
      rd_samples = 16310;
      rd_finite = 0;
      rd_infinite = 16310;
      rd_mean = 0.;
      rd_max = 0;
      rd_histogram = [ 0; 0; 0; 0; 0; 0; 0; 16310 ];
      md_total = 765;
      md_degree = 1.;
      md_distribution =
        [ 0; 765; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0;
          0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ];
      bd_divergent = 2;
      bd_total = 1022;
    };
    {
      app = "bfs";
      rd_samples = 338642;
      rd_finite = 26918;
      rd_infinite = 311724;
      rd_mean = 612.366149;
      rd_max = 2788;
      rd_histogram = [ 30; 98; 278; 1044; 3403; 9720; 12345; 311724 ];
      md_total = 46813;
      md_degree = 2.664495;
      md_distribution =
        [ 0; 26375; 4313; 3194; 2661; 2688; 3729; 1039; 887; 789; 600; 318;
          153; 53; 11; 3; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ];
      bd_divergent = 34127;
      bd_total = 57023;
    };
  ]

let test_fig4 g () =
  let rd = Advisor.reuse_distance (session g.app) in
  check_int "samples" g.rd_samples rd.samples;
  check_int "finite reuses" g.rd_finite rd.finite_reuses;
  check_int "infinite reuses" g.rd_infinite rd.infinite_reuses;
  check_float "mean finite distance" g.rd_mean rd.mean_finite_distance;
  check_int "max finite distance" g.rd_max rd.max_finite_distance;
  List.iter2
    (fun b expect ->
      check_int
        (Printf.sprintf "bucket %s" (Analysis.Reuse_distance.bucket_label b))
        expect
        (List.assoc b rd.histogram))
    Analysis.Reuse_distance.buckets g.rd_histogram

let test_fig5 g () =
  let md = Advisor.mem_divergence ~line_size:128 (session g.app) in
  check_int "warp instructions" g.md_total md.total_instructions;
  check_float "divergence degree" g.md_degree md.degree;
  List.iteri
    (fun i expect ->
      check_int (Printf.sprintf "=%d lines" i) expect md.distribution.(i))
    g.md_distribution

let test_table3 g () =
  let bd = Advisor.branch_divergence (session g.app) in
  check_int "divergent blocks" g.bd_divergent bd.divergent_blocks;
  check_int "total blocks" g.bd_total bd.total_blocks

let () =
  Alcotest.run "golden"
    (List.map
       (fun g ->
         ( g.app,
           [
             Alcotest.test_case "fig4 reuse distance" `Quick (test_fig4 g);
             Alcotest.test_case "fig5 memory divergence" `Quick (test_fig5 g);
             Alcotest.test_case "table3 branch divergence" `Quick (test_table3 g);
           ] ))
       goldens)
