(* The CI bench-regression gate (bench/gate.exe) as a subprocess:
   exit codes, the gated-metric tolerances, the absolute slack on
   sub-millisecond metrics, the missing-metric failure mode, and the
   tolerance rescale used on noisy CI runners. *)

let check_int = Alcotest.(check int)

let gate_binary () =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bench")
    "gate.exe"

let write_json name contents =
  let path = Filename.temp_file ("gate-" ^ name) ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

(* A minimal but complete baseline: both gated metrics plus one
   informational section leaf. *)
let baseline_doc ~nn_ns ~p50_ms =
  Printf.sprintf
    {|{"sections": {"table1": {"seconds": 2.0}},
       "bechamel_ns_per_run": {"cudaadvisor/table1-simulate-nn": %f},
       "serve_fleet": {"1": {"hot_ms_p50": %f, "hot_req_per_s": 4000.0, "shards": 1}}}|}
    nn_ns p50_ms

let run_gate ?(env = []) args =
  let gate = gate_binary () in
  if not (Sys.file_exists gate) then Alcotest.skip ();
  let cmd =
    String.concat " "
      (List.map Filename.quote (gate :: args))
    ^ " > /dev/null 2>&1"
  in
  let cmd =
    List.fold_left
      (fun acc (k, v) -> Printf.sprintf "%s=%s %s" k (Filename.quote v) acc)
      cmd env
  in
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | _ -> Alcotest.fail "gate killed by signal"

let test_identical_passes () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  check_int "identical inputs pass" 0 (run_gate [ base; base ])

let test_regression_fails () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  let slow = write_json "slow" (baseline_doc ~nn_ns:2_000_000. ~p50_ms:0.5) in
  check_int "2x simulate regression fails" 1 (run_gate [ base; slow ]);
  let slow_p50 = write_json "p50" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:1.5) in
  check_int "p50 regression fails" 1 (run_gate [ base; slow_p50 ])

let test_within_tolerance_passes () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  let near = write_json "near" (baseline_doc ~nn_ns:1_200_000. ~p50_ms:0.6) in
  (* +20% ns and +0.1 ms (< 25% + 0.05 ms slack on 0.5) both fit *)
  check_int "within budget passes" 0 (run_gate [ base; near ])

let test_slack_absorbs_jitter () =
  (* on a 0.01 ms baseline, a 3x blowup is still under the 0.05 ms
     absolute slack: scheduler jitter must not trip the gate *)
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.01) in
  let jitter = write_json "jit" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.03) in
  check_int "sub-slack jitter passes" 0 (run_gate [ base; jitter ])

let test_missing_gated_metric_fails () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  let partial =
    write_json "partial"
      {|{"bechamel_ns_per_run": {"cudaadvisor/table1-simulate-nn": 1000000.0}}|}
  in
  check_int "current missing a gated metric fails" 1 (run_gate [ base; partial ])

let test_tolerance_scale_rescues () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  let warm = write_json "warm" (baseline_doc ~nn_ns:1_300_000. ~p50_ms:0.5) in
  check_int "+30% fails at scale 1" 1 (run_gate [ base; warm ]);
  check_int "+30% passes at scale 10" 0
    (run_gate [ base; warm; "--tolerance-scale"; "10" ]);
  check_int "env var rescales too" 0
    (run_gate ~env:[ ("GATE_TOLERANCE_SCALE", "10") ] [ base; warm ])

let test_usage_errors () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  check_int "missing positional args" 2 (run_gate [ base ]);
  let garbage = write_json "garbage" "{nope" in
  check_int "invalid JSON" 2 (run_gate [ base; garbage ]);
  check_int "bad scale" 2 (run_gate [ base; base; "--tolerance-scale"; "zero" ])

let test_summary_written () =
  let base = write_json "base" (baseline_doc ~nn_ns:1_000_000. ~p50_ms:0.5) in
  let summary = Filename.temp_file "gate-summary" ".md" in
  check_int "gate passes" 0 (run_gate [ base; base; "--summary"; summary ]);
  let ic = open_in summary in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool)
    "summary carries the markdown report" true
    (String.length text > 0
    && String.sub text 0 3 = "###")

let () =
  Alcotest.run "gate"
    [
      ( "gate",
        [
          Alcotest.test_case "identical passes" `Quick test_identical_passes;
          Alcotest.test_case "regressions fail" `Quick test_regression_fails;
          Alcotest.test_case "within tolerance passes" `Quick
            test_within_tolerance_passes;
          Alcotest.test_case "absolute slack absorbs jitter" `Quick
            test_slack_absorbs_jitter;
          Alcotest.test_case "missing gated metric fails" `Quick
            test_missing_gated_metric_fails;
          Alcotest.test_case "tolerance scale rescues" `Quick
            test_tolerance_scale_rescues;
          Alcotest.test_case "usage errors" `Quick test_usage_errors;
          Alcotest.test_case "summary file written" `Quick test_summary_written;
        ] );
    ]
