(* The tuning layer behind `advisor evaluate`: the conservative source
   unroller (text-level behavior plus semantic equivalence under the
   profiler), the block_x launch override, variant cache identity,
   ranking invariance under submission order (QCheck), and the sweep's
   generated variant sets. *)

module Json = Analysis.Json
module Jsonv = Obs.Jsonv
module Evaluate = Tune.Evaluate
module Sweep = Tune.Sweep

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let kepler () = Option.get (Gpusim.Arch.of_name "kepler")

(* ----- the unroller, textually ----- *)

let test_unroll_simple_loop () =
  let src = "for (int i = 0; i < n; i = i + 1) { acc = acc + i; }" in
  let out, count = Minicuda.Unroll.unroll ~factor:4 src in
  check_int "one loop unrolled" 1 count;
  check_bool "guarded copies appear" true
    (String.length out > String.length src);
  (* the guard that makes the rewrite exact for every trip count *)
  let has_guard =
    let needle = "if (i + 1 < n)" in
    let n = String.length needle in
    let rec go i =
      i + n <= String.length out && (String.sub out i n = needle || go (i + 1))
    in
    go 0
  in
  check_bool "remainder guard present" true has_guard

let test_unroll_skips_unsafe_bodies () =
  let unrolled src = snd (Minicuda.Unroll.unroll ~factor:4 src) in
  check_int "__syncthreads body untouched" 0
    (unrolled "for (int i = 0; i < n; i = i + 1) { __syncthreads(); }");
  check_int "break body untouched" 0
    (unrolled "for (int i = 0; i < n; i = i + 1) { if (i > 2) { break; } }");
  check_int "local declaration untouched" 0
    (unrolled "for (int i = 0; i < n; i = i + 1) { int t = i; acc = acc + t; }");
  check_int "write to the induction variable untouched" 0
    (unrolled "for (int i = 0; i < n; i = i + 1) { i = i + 2; }");
  check_int "non-unit stride untouched" 0
    (unrolled "for (int i = 0; i < n; i = i + 2) { acc = acc + i; }")

let test_unroll_innermost_only () =
  let src =
    "for (int i = 0; i < n; i = i + 1) { for (int j = 0; j < m; j = j + 1) { \
     acc = acc + j; } }"
  in
  let out, count = Minicuda.Unroll.unroll ~factor:2 src in
  check_int "only the innermost loop unrolled" 1 count;
  (* the outer header must survive verbatim *)
  check_bool "outer loop intact" true
    (String.length out >= 34 && String.sub out 0 34 = String.sub src 0 34)

let test_unroll_bad_factor () =
  Alcotest.check_raises "factor < 2 rejected"
    (Invalid_argument "Unroll.unroll: factor must be >= 2") (fun () ->
      ignore (Minicuda.Unroll.unroll ~factor:1 "x"))

(* ----- the unroller, semantically -----

   An unrolled variant must be observationally equivalent under the
   profiler: same warp-level memory-instruction count and divergence
   degree as the pristine source (unrolling duplicates bodies, it must
   not duplicate or drop memory accesses). *)

let test_registry_stress_variants () =
  let stress = Workloads.Registry.stress in
  check_bool "stress set non-empty" true (stress <> []);
  List.iter
    (fun (w : Workloads.Common.t) ->
      let base = Filename.remove_extension w.Workloads.Common.name in
      ignore base;
      check_bool
        (Printf.sprintf "%s named after its parent" w.Workloads.Common.name)
        true
        (Filename.check_suffix w.Workloads.Common.name "-unroll4");
      check_bool
        (Printf.sprintf "%s findable" w.Workloads.Common.name)
        true
        (Workloads.Registry.find_opt w.Workloads.Common.name <> None))
    stress

let test_unroll_semantic_equivalence () =
  match Workloads.Registry.find_opt "syrk-unroll4" with
  | None -> Alcotest.fail "syrk-unroll4 missing from the stress registry"
  | Some unrolled ->
    let arch = kepler () in
    let base = Workloads.Registry.find "syrk" in
    let md w =
      let session = Advisor.profile ~arch w in
      Advisor.mem_divergence session
    in
    let mb = md base and mu = md unrolled in
    check_int "same warp-level memory instruction count"
      mb.Analysis.Mem_divergence.total_instructions
      mu.Analysis.Mem_divergence.total_instructions;
    check_bool "same divergence degree" true
      (Float.abs
         (mb.Analysis.Mem_divergence.degree
         -. mu.Analysis.Mem_divergence.degree)
      < 1e-9)

(* ----- block_x override ----- *)

let test_block_x_override () =
  let arch = kepler () in
  let w = Workloads.Registry.find "nn" in
  let shape ?block_x () =
    let _, host = Advisor.run_native ?block_x ~arch w in
    match Hostrt.Host.launches host with
    | (_, r) :: _ -> (r.Gpusim.Gpu.ctas, r.Gpusim.Gpu.warps_per_cta)
    | [] -> Alcotest.fail "no launches recorded"
  in
  let ctas0, wpc0 = shape () in
  let ctas1, wpc1 = shape ~block_x:128 () in
  (* nn's CTA is (256, 1): halving the width doubles the grid and
     halves the warps per CTA, preserving total threads *)
  check_int "warps per CTA halved" (wpc0 / 2) wpc1;
  check_int "CTA count doubled" (ctas0 * 2) ctas1;
  check_int "total warps preserved" (ctas0 * wpc0) (ctas1 * wpc1)

(* ----- variant identity ----- *)

let test_variant_key_properties () =
  let arch = kepler () in
  let w = Workloads.Registry.find "nn" in
  let scale = w.Workloads.Common.default_scale in
  let key spec = Evaluate.variant_key ~w ~arch ~scale spec in
  let base = Evaluate.baseline_spec in
  check_string "renaming a variant keeps its identity" (key base)
    (key { base with Evaluate.sp_name = "renamed" });
  check_bool "block_x is part of the identity" false
    (key base = key { base with Evaluate.sp_name = "b"; sp_block_x = Some 128 });
  check_bool "bypass_warps is part of the identity" false
    (key base
    = key { base with Evaluate.sp_name = "c"; sp_bypass_warps = Some 4 });
  check_bool "source is part of the identity" false
    (key base
    = key { base with Evaluate.sp_name = "d"; sp_source = Some "/*x*/" })

(* ----- ranking: total order, invariant under submission order ----- *)

let raw_of ~status ~cycles =
  match cycles with
  | Some c -> Printf.sprintf {|{"status": %S, "cycles": %d}|} status c
  | None -> Printf.sprintf {|{"status": %S, "cycles": null}|} status

let ranking_string ~baseline entries =
  Json.to_string (Json.List (Evaluate.ranking ~baseline entries))

let entries_gen =
  let open QCheck in
  let entry i =
    Gen.map
      (fun (failed, cycles) ->
        let name = Printf.sprintf "v%d" i in
        if failed then (name, raw_of ~status:"compile_failed" ~cycles:None)
        else (name, raw_of ~status:"ok" ~cycles:(Some cycles)))
      Gen.(pair bool (int_range 1 50))
  in
  (* up to 10 uniquely-named variants; small cycle range forces ties *)
  Gen.(int_range 1 10 >>= fun n -> flatten_l (List.init n entry))

let qcheck_ranking_order_invariant =
  QCheck.Test.make ~count:200
    ~name:"ranking invariant under submission order"
    (QCheck.make
       QCheck.Gen.(pair entries_gen (int_bound 1000))
       ~print:(fun (entries, seed) ->
         Printf.sprintf "seed %d: %s" seed
           (String.concat "; " (List.map fst entries))))
    (fun (entries, seed) ->
      let st = Random.State.make [| seed |] in
      let shuffled =
        List.map snd
          (List.sort compare
             (List.map (fun e -> (Random.State.bits st, e)) entries))
      in
      String.equal
        (ranking_string ~baseline:"v1" entries)
        (ranking_string ~baseline:"v1" shuffled))

let test_ranking_failures_last () =
  let entries =
    [ ("slow", raw_of ~status:"ok" ~cycles:(Some 900));
      ("broken", raw_of ~status:"compile_failed" ~cycles:None);
      ("fast", raw_of ~status:"ok" ~cycles:(Some 300)) ]
  in
  let names =
    List.filter_map
      (function
        | Json.Obj fields -> (
          match List.assoc "name" fields with
          | Json.String s -> Some s
          | _ -> None)
        | _ -> None)
      (Evaluate.ranking ~baseline:"slow" entries)
  in
  Alcotest.(check (list string))
    "best first, failures last" [ "fast"; "slow"; "broken" ] names;
  (* speedup is relative to the declared baseline *)
  match Evaluate.ranking ~baseline:"slow" entries with
  | Json.Obj first :: _ ->
    check_bool "winner's speedup vs baseline" true
      (match List.assoc "speedup_vs_baseline" first with
      | Json.Float f -> Float.abs (f -. 3.0) < 1e-9
      | _ -> false)
  | _ -> Alcotest.fail "empty ranking"

(* ----- a direct batch: compile failure stays isolated ----- *)

let test_batch_compile_failure_isolated () =
  let arch = kepler () in
  let w = Workloads.Registry.find "nn" in
  let specs =
    [ Evaluate.baseline_spec;
      { Evaluate.baseline_spec with
        Evaluate.sp_name = "broken";
        sp_source = Some "__global__ void nope(int {]" } ]
  in
  let result = Evaluate.run_batch ~baseline:"base" ~arch w specs in
  match Jsonv.parse (Json.to_string result) with
  | Error m -> Alcotest.failf "batch result unparseable: %s" m
  | Ok v ->
    let variants =
      match Jsonv.member "variants" v with
      | Some (Jsonv.Arr vs) -> vs
      | _ -> Alcotest.fail "no variants array"
    in
    check_int "every submitted variant present" 2 (List.length variants);
    let status_of name =
      match
        List.find_opt
          (fun var -> Jsonv.member "name" var = Some (Jsonv.Str name))
          variants
      with
      | Some var -> (
        match
          Option.bind (Jsonv.member "result" var) (Jsonv.member "status")
        with
        | Some (Jsonv.Str s) -> s
        | _ -> Alcotest.failf "variant %s has no status" name)
      | None -> Alcotest.failf "variant %s missing" name
    in
    check_string "baseline unaffected" "ok" (status_of "base");
    check_string "broken variant isolated" "compile_failed"
      (status_of "broken")

(* ----- the sweep's generated variants ----- *)

let test_sweep_specs () =
  List.iter
    (fun (w : Workloads.Common.t) ->
      let specs = Sweep.specs_for w in
      let names = List.map (fun s -> s.Evaluate.sp_name) specs in
      check_bool
        (Printf.sprintf "%s: baseline present" w.Workloads.Common.name)
        true
        (List.mem Sweep.baseline_name names);
      check_int
        (Printf.sprintf "%s: unique names" w.Workloads.Common.name)
        (List.length names)
        (List.length (List.sort_uniq String.compare names));
      check_bool
        (Printf.sprintf "%s: more than the baseline" w.Workloads.Common.name)
        true
        (List.length specs > 1))
    Workloads.Registry.all

let () =
  Alcotest.run "tune"
    [
      ( "unroll",
        [
          Alcotest.test_case "simple loop unrolls" `Quick test_unroll_simple_loop;
          Alcotest.test_case "unsafe bodies skipped" `Quick
            test_unroll_skips_unsafe_bodies;
          Alcotest.test_case "innermost only" `Quick test_unroll_innermost_only;
          Alcotest.test_case "bad factor" `Quick test_unroll_bad_factor;
          Alcotest.test_case "registry stress variants" `Quick
            test_registry_stress_variants;
          Alcotest.test_case "semantic equivalence under the profiler" `Quick
            test_unroll_semantic_equivalence;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "block_x override reshapes the launch" `Quick
            test_block_x_override;
          Alcotest.test_case "variant cache identity" `Quick
            test_variant_key_properties;
        ] );
      ( "ranking",
        [
          QCheck_alcotest.to_alcotest qcheck_ranking_order_invariant;
          Alcotest.test_case "failures last, speedup vs baseline" `Quick
            test_ranking_failures_last;
          Alcotest.test_case "compile failure stays isolated" `Quick
            test_batch_compile_failure_isolated;
        ] );
      ( "sweep",
        [ Alcotest.test_case "generated variant sets" `Quick test_sweep_specs ]
      );
    ]
