(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections 4 and 5).  Run all sections with

     dune exec bench/main.exe

   or a subset, e.g. `dune exec bench/main.exe -- fig4 table3`.  The
   [bech] section additionally runs Bechamel micro-benchmarks of the
   framework's own pipelines (one Test.make per table/figure).

   `--json FILE` additionally records per-section wall-clock seconds
   (and, when the bech section runs, its ns/run estimates) as JSON.
   Independent experiments fan out across domains via [Pool]; set
   POOL_DOMAINS=1 to force sequential runs. *)

let kepler16 () = Gpusim.Arch.kepler_k40c ~l1_kb:16 ()
let kepler48 () = Gpusim.Arch.kepler_k40c ~l1_kb:48 ()
let pascal () = Gpusim.Arch.pascal_p100 ()

(* The paper's evaluation inputs put ~8 CTAs on each SM; our inputs are
   scaled down ~10x, so the bypassing experiments scale the SM count as
   well to preserve per-SM occupancy — the quantity that determines L1
   contention (see DESIGN.md). *)
let kepler_bypass l1_kb = Gpusim.Arch.kepler_k40c ~num_sms:5 ~l1_kb ()
let pascal_bypass () = Gpusim.Arch.pascal_p100 ~num_sms:8 ()

let bypass_apps = [ "bfs"; "hotspot"; "bicg"; "syrk"; "syr2k" ]

let heading title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let section s = Printf.printf "\n--- %s ---\n%!" s

(* Profile sessions are shared across fig4/fig5/table3/fig8/fig9: those
   metrics are architecture-independent program properties (the paper
   runs reuse distance on Kepler only and notes that branch divergence
   is architecture-independent). *)
let sessions : (string, Advisor.session) Hashtbl.t = Hashtbl.create 16

(* Profile any not-yet-cached sessions of [names] in parallel, then
   publish them to the (domain-unsafe) cache from the main domain. *)
let prewarm names =
  let missing =
    List.sort_uniq compare names
    |> List.filter (fun n -> not (Hashtbl.mem sessions n))
  in
  Pool.map
    (fun n -> (n, Advisor.profile ~arch:(kepler16 ()) (Workloads.Registry.find n)))
    missing
  |> List.iter (fun (n, s) -> Hashtbl.replace sessions n s)

let session_of name =
  match Hashtbl.find_opt sessions name with
  | Some s -> s
  | None ->
    let w = Workloads.Registry.find name in
    let s = Advisor.profile ~arch:(kepler16 ()) w in
    Hashtbl.replace sessions name s;
    s

let all_names = List.map (fun (w : Workloads.Common.t) -> w.name) Workloads.Registry.all

(* ----- Table 1 ----- *)

let table1 () =
  heading "Table 1: GPU architectures for evaluation";
  Printf.printf "%-14s %-45s %-4s %-6s %-6s %-4s\n" "Architecture" "GPU" "CC."
    "L1" "line" "SMs";
  List.iter
    (fun (a : Gpusim.Arch.t) ->
      Printf.printf "%-14s %-45s %-4s %-6s %-6d %-4d\n"
        (if a.compute_capability = "3.5" then "Kepler" else "Pascal")
        a.name a.compute_capability
        (Printf.sprintf "%dKB" (a.l1_size / 1024))
        a.line_size a.num_sms)
    [ kepler16 (); kepler48 (); pascal () ]

(* ----- Table 2 ----- *)

let table2 () =
  heading "Table 2: benchmarks";
  Printf.printf "%-10s %-40s %-9s %s\n" "App" "Description" "warps/CTA" "Input";
  List.iter
    (fun (w : Workloads.Common.t) ->
      Printf.printf "%-10s %-40s %-9d %s\n" w.name w.description w.warps_per_cta
        w.input_desc)
    Workloads.Registry.all

(* ----- Figure 4: reuse distance ----- *)

(* bfs and nn are excluded (>99% no-reuse) and syr2k resembles syrk, as
   in the paper. *)
let fig4_apps = [ "backprop"; "hotspot"; "lavaMD"; "nw"; "srad_v2"; "bicg"; "syrk" ]

let fig4 () =
  heading "Figure 4: reuse distance analysis (Kepler)";
  prewarm (fig4_apps @ [ "bfs"; "nn" ]);
  Printf.printf "%-10s" "App";
  List.iter
    (fun b -> Printf.printf " %8s" (Analysis.Reuse_distance.bucket_label b))
    Analysis.Reuse_distance.buckets;
  Printf.printf " %10s\n" "mean(fin)";
  List.iter
    (fun name ->
      let s = session_of name in
      let rd = Advisor.reuse_distance s in
      Printf.printf "%-10s" name;
      List.iter
        (fun b ->
          Printf.printf " %7.1f%%" (100. *. Analysis.Reuse_distance.fraction rd b))
        Analysis.Reuse_distance.buckets;
      Printf.printf " %10.1f\n%!" rd.mean_finite_distance)
    fig4_apps;
  List.iter
    (fun name ->
      let s = session_of name in
      let rd = Advisor.reuse_distance s in
      Printf.printf "%-10s excluded: %.1f%% no-reuse (paper: >99%%)\n%!" name
        (100. *. Analysis.Reuse_distance.no_reuse_fraction rd))
    [ "bfs"; "nn" ]

(* ----- Figure 5: memory divergence ----- *)

let fig5_arch label line_size =
  section
    (Printf.sprintf "Figure 5(%s): unique cache lines touched per warp access" label);
  Printf.printf "%-10s" "App";
  let cols = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter (fun c -> Printf.printf " %7s" (Printf.sprintf "=%d" c)) cols;
  Printf.printf " %8s %8s\n" "other" "degree";
  List.iter
    (fun (w : Workloads.Common.t) ->
      let s = session_of w.name in
      let md = Advisor.mem_divergence ~line_size s in
      let shown =
        List.map (fun c -> 100. *. Analysis.Mem_divergence.fraction md c) cols
      in
      let other = Float.max 0. (100. -. List.fold_left ( +. ) 0. shown) in
      Printf.printf "%-10s" w.name;
      List.iter (fun v -> Printf.printf " %6.1f%%" v) shown;
      Printf.printf " %7.1f%% %8.2f\n%!" other md.degree)
    Workloads.Registry.all

let fig5 () =
  heading "Figure 5: memory divergence distribution";
  prewarm all_names;
  fig5_arch "a: Kepler, 128B lines" 128;
  fig5_arch "b: Pascal, 32B lines" 32

(* ----- Table 3: branch divergence ----- *)

let table3 () =
  heading "Table 3: branch divergence (architecture-independent)";
  prewarm all_names;
  Printf.printf "%-10s %18s %14s %14s\n" "App" "# divergent blocks" "# total blocks"
    "% divergence";
  List.iter
    (fun (w : Workloads.Common.t) ->
      let s = session_of w.name in
      let bd = Advisor.branch_divergence s in
      Printf.printf "%-10s %18d %14d %13.2f%%\n%!" w.name bd.divergent_blocks
        bd.total_blocks
        (Analysis.Branch_divergence.percent bd))
    Workloads.Registry.all

(* ----- Figures 6/7: horizontal cache bypassing ----- *)

let bypass_table label arch =
  section label;
  Printf.printf "%-10s %8s %14s %16s\n" "App" "baseline" "oracle(norm)"
    "prediction(norm)";
  (* the per-app studies are independent: compute in parallel, print in
     order (each study still fans out its own sweep when domains remain) *)
  let studies =
    Pool.map
      (fun name -> Advisor.bypass_study ~arch (Workloads.Registry.find name))
      bypass_apps
  in
  let gaps =
    List.map
      (fun (b : Advisor.bypass_experiment) ->
        let norm c = float_of_int c /. float_of_int b.baseline_cycles in
        Printf.printf "%-10s %8s %14s %16s   oracle=N%d pred=N%d\n%!" b.app "1.000"
          (Printf.sprintf "%.3f" (norm b.oracle_cycles))
          (Printf.sprintf "%.3f" (norm b.predicted_cycles))
          b.oracle_warps b.predicted_warps;
        float_of_int b.predicted_cycles /. float_of_int b.oracle_cycles)
      studies
  in
  let n = List.length gaps in
  let avg = List.fold_left ( +. ) 0. gaps /. float_of_int n in
  Printf.printf "prediction is on average %.1f%% slower than oracle (paper: 4-7%%)\n%!"
    (100. *. (avg -. 1.))

let fig6 () =
  heading "Figure 6: horizontal bypassing on Kepler (normalized time, lower=better)";
  bypass_table "16KB L1" (kepler_bypass 16);
  bypass_table "48KB L1" (kepler_bypass 48)

let fig7 () =
  heading "Figure 7: horizontal bypassing on Pascal (24KB unified L1)";
  bypass_table "24KB unified" (pascal_bypass ())

(* ----- Figures 8/9: code- and data-centric debugging views ----- *)

(* The busiest Kernel instance (the widest frontier iteration), where
   the paper's walkthrough finds the divergent access. *)
let bfs_kernel_instance () =
  let s = session_of "bfs" in
  let instances =
    List.filter
      (fun (i : Profiler.Profile.instance) -> i.kernel = "Kernel")
      (Advisor.instances s)
  in
  let busiest =
    List.fold_left
      (fun acc (i : Profiler.Profile.instance) ->
        match acc with
        | Some (best : Profiler.Profile.instance) when best.mem_count >= i.mem_count ->
          acc
        | _ -> Some i)
      None instances
  in
  (s, Option.get busiest)

let fig8 () =
  heading "Figure 8: code-centric view (bfs)";
  let s, instance = bfs_kernel_instance () in
  print_string
    (Analysis.Views.divergent_sites_report s.profiler instance ~line_size:128 ~top:2)

let fig9 () =
  heading "Figure 9: data-centric view (bfs)";
  let s, instance = bfs_kernel_instance () in
  print_string
    (Analysis.Views.data_centric_report s.profiler instance ~line_size:128 ~top:3)

(* ----- Figure 10: instrumentation overhead ----- *)

let fig10 () =
  heading "Figure 10: runtime overhead of memory + control-flow instrumentation";
  Printf.printf "%-10s %14s %14s\n" "App" "Kepler" "Pascal";
  Pool.map
    (fun (w : Workloads.Common.t) ->
      let k = Advisor.overhead_study ~arch:(kepler16 ()) w in
      let p = Advisor.overhead_study ~arch:(pascal ()) w in
      (w.name, k.slowdown, p.slowdown))
    Workloads.Registry.all
  |> List.iter (fun (name, k, p) ->
         Printf.printf "%-10s %13.1fx %13.1fx\n%!" name k p)

(* ----- Extension: vertical bypassing (the other scheme of 4.2-(D)) ----- *)

let vertical () =
  heading "Extension: vertical (per-instruction) bypassing, Kepler 16KB";
  Printf.printf "%-10s %10s %10s %8s %s\n" "App" "baseline" "vertical" "speedup"
    "bypassed sites";
  Pool.map
    (fun name ->
      Advisor.vertical_bypass_study ~arch:(kepler_bypass 16)
        (Workloads.Registry.find name))
    [ "bicg"; "hotspot"; "nn"; "syr2k" ]
  |> List.iter (fun (v : Advisor.vertical_experiment) ->
         Printf.printf "%-10s %10d %10d %7.2fx %d of %d load sites\n%!" v.v_app
           v.v_baseline_cycles v.v_cycles
           (float_of_int v.v_baseline_cycles /. float_of_int v.v_cycles)
           v.v_sites_bypassed v.v_sites_total)

(* ----- Ablations of the design choices DESIGN.md calls out ----- *)

let ablation () =
  heading "Ablation: simulator mechanisms behind the bypassing results";
  let bicg = Workloads.Registry.find "bicg" in
  section "MSHR pool size (bicg baseline, Kepler 16KB, 5 SMs)";
  List.iter
    (fun entries ->
      let arch0 = kepler_bypass 16 in
      let arch = { arch0 with Gpusim.Arch.mshr_entries = entries } in
      let cycles, _ = Advisor.run_native ~arch bicg in
      Printf.printf "  %3d MSHRs: %9d cycles\n%!" entries cycles)
    [ 16; 32; 64; 128 ];
  section "DRAM service rate (bicg baseline, cycles per 128B transaction)";
  List.iter
    (fun service ->
      let arch0 = kepler_bypass 16 in
      let arch = { arch0 with Gpusim.Arch.dram_service = service } in
      let cycles, _ = Advisor.run_native ~arch bicg in
      Printf.printf "  %d cyc/txn: %9d cycles\n%!" service cycles)
    [ 1; 2; 4; 8 ];
  section "Hook cost model (nn overhead study, Kepler)";
  List.iter
    (fun (base, lane, txn) ->
      let arch0 = kepler16 () in
      let arch =
        { arch0 with
          Gpusim.Arch.hook =
            { hook_base = base; hook_per_lane = lane; hook_mem_txn = txn } }
      in
      let o = Advisor.overhead_study ~arch (Workloads.Registry.find "nn") in
      Printf.printf "  base=%2d per-lane=%d txn=%3d  -> %6.1fx slowdown\n%!" base
        lane txn o.slowdown)
    [ (0, 0, 0); (12, 3, 50); (30, 12, 60) ]

(* ----- Bechamel micro-benchmarks of the framework itself ----- *)

(* ns/run estimates of the last [bech] run, kept for `--json`. *)
let bech_rows : (string * float) list ref = ref []

let bechamel () =
  heading "Bechamel micro-benchmarks (framework pipelines)";
  let open Bechamel in
  let nn = Workloads.Registry.find "nn" in
  let compiled = Workloads.Common.compile nn in
  let session = session_of "nn" in
  let instance = List.hd (Advisor.instances session) in
  let trace = instance.Profiler.Profile.trace in
  let tests =
    Test.make_grouped ~name:"cudaadvisor"
      [
        Test.make ~name:"table2-compile+instrument"
          (Staged.stage (fun () ->
               let m = Workloads.Common.compile nn in
               ignore (Passes.Instrument.run m)));
        Test.make ~name:"fig2-ptx-codegen"
          (Staged.stage (fun () -> ignore (Ptx.Codegen.gen_module compiled)));
        Test.make ~name:"table1-simulate-nn"
          (Staged.stage (fun () ->
               ignore (Advisor.run_native ~arch:(kepler16 ()) nn)));
        Test.make ~name:"fig4-reuse-distance"
          (Staged.stage (fun () -> ignore (Analysis.Reuse_distance.of_trace trace)));
        Test.make ~name:"fig5-mem-divergence"
          (Staged.stage (fun () ->
               ignore (Analysis.Mem_divergence.of_trace ~line_size:128 trace)));
        Test.make ~name:"table3-branch-divergence"
          (Staged.stage (fun () ->
               ignore
                 (Analysis.Branch_divergence.of_instances
                    (Advisor.instances session))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  bech_rows := [];
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (t :: _) ->
        bech_rows := (name, t) :: !bech_rows;
        Printf.printf "  %-40s %12.1f ns/run\n" name t
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows)

(* ----- smoke: one native launch per workload -----

   A seconds-long end-to-end pass over every workload (compile ->
   codegen -> simulate), for quick sanity checks and CI.  Exposed both
   as the [smoke] section and as `--smoke` / the dune @smoke alias. *)

let smoke () =
  heading "Smoke: one native launch per workload";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (w : Workloads.Common.t) ->
      let t = Unix.gettimeofday () in
      let cycles, _host = Advisor.run_native ~arch:(kepler16 ()) w in
      Printf.printf "  %-10s %10d cycles  %6.2fs\n%!" w.name cycles
        (Unix.gettimeofday () -. t))
    Workloads.Registry.all;
  (* Self-profiling self-check: one traced nn profile must export a
     Chrome trace that parses as JSON.  The @smoke alias runs this, so
     CI fails on malformed exporter output. *)
  let was_enabled = Obs.Trace.enabled () in
  Obs.Trace.enable ();
  ignore (Advisor.profile ~arch:(kepler16 ()) (Workloads.Registry.find "nn"));
  let chrome = Obs.Trace.export_chrome () in
  if not was_enabled then Obs.Trace.disable ();
  (match Obs.Jsonv.parse chrome with
  | Ok _ ->
    Printf.printf "trace self-check: %d events, JSON parses\n%!"
      (Obs.Trace.event_count ())
  | Error msg ->
    Printf.eprintf "trace self-check FAILED: exported trace is not valid JSON (%s)\n%!"
      msg;
    exit 1);
  Printf.printf "smoke total: %.2fs\n%!" (Unix.gettimeofday () -. t0)

(* ----- serve: daemon throughput and overlapping cold compiles ----- *)

(* Distinct synthetic sources big enough that compile time dominates
   scheduling noise. *)
let gen_kernels ~tag n =
  let b = Buffer.create (n * 160) in
  for i = 0 to n - 1 do
    Printf.bprintf b
      "__global__ void k%d_%s(float* a, int n) {\n\
      \  int i = blockDim.x * blockIdx.x + threadIdx.x;\n\
      \  if (i < n) { a[i] = a[i] * %d.0 + 1.0; }\n}\n"
      i tag (i + 1)
  done;
  Buffer.contents b

let serve_bench () =
  heading "Serve: overlapping cold compiles and daemon throughput";
  let time f =
    let t = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t
  in
  (* Cold-compile latency isolation: per-key in-flight tracking means a
     cheap compile runs concurrently with an expensive one instead of
     queueing behind it on the old whole-cache lock (under which the
     small compile's latency would be ~the big compile's). *)
  let compile tag n file = ignore (Advisor.compile_source ~file (gen_kernels ~tag n)) in
  let small_alone = time (fun () -> compile "small_alone" 50 "bench-serve-sa.cu") in
  let big_alone = time (fun () -> compile "big_alone" 3000 "bench-serve-ba.cu") in
  let _, misses0 = Advisor.compile_cache_stats () in
  let big = Domain.spawn (fun () -> compile "big_infl" 3000 "bench-serve-bi.cu") in
  (* wait for the big compile to claim its key (miss counted at claim) *)
  while snd (Advisor.compile_cache_stats ()) <= misses0 do
    Domain.cpu_relax ()
  done;
  let small_during = time (fun () -> compile "small_during" 50 "bench-serve-sd.cu") in
  Domain.join big;
  Printf.printf
    "  cold compile of 50 kernels: %5.1f ms alone, %5.1f ms while a 3000-kernel \
     compile is in flight\n  (the pre-fix whole-cache lock pinned the latter to \
     the big compile's %.0f ms)\n%!"
    (small_alone *. 1000.) (small_during *. 1000.) (big_alone *. 1000.);
  (* Daemon round-trip throughput: an in-process daemon on a Unix
     socket, a batch of profile requests, warm compile cache. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "advisor-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      Serve.Server.default_config with
      socket_path = Some path;
      stdio = false;
      workers = 4;
      queue_cap = 64;
      default_timeout_ms = Some 300_000;
      (* cache off: this section measures raw daemon round-trip cost;
         the cached path is the servefleet section's subject *)
      cache = None;
    }
  in
  let srv = Serve.Server.create cfg in
  let daemon = Domain.spawn (fun () -> Serve.Server.run srv) in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec connect tries =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
      Unix.sleepf 0.01;
      connect (tries - 1)
  in
  connect 200;
  let requests = 32 in
  let elapsed =
    time (fun () ->
        for i = 1 to requests do
          let line =
            Printf.sprintf {|{"id": %d, "op": "profile", "app": "nn"}|} i ^ "\n"
          in
          let data = Bytes.of_string line in
          ignore (Unix.write fd data 0 (Bytes.length data))
        done;
        let buf = Bytes.create 65536 in
        let seen = ref 0 in
        while !seen < requests do
          let n = Unix.read fd buf 0 (Bytes.length buf) in
          if n = 0 then failwith "serve bench: daemon closed the connection";
          Bytes.iteri (fun i c -> if i < n && c = '\n' then incr seen) buf
        done)
  in
  Unix.close fd;
  Serve.Server.request_shutdown srv;
  Domain.join daemon;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Printf.printf
    "  %d served profile(nn) round-trips on 4 workers: %.2fs (%.1f req/s)\n%!"
    requests elapsed (float_of_int requests /. elapsed)

(* ----- serve-fleet: result-cache latency and shard scaling -----

   Launches real `advisor serve` processes through the CLI binary (the
   supervisor forks, which is only well-defined from a single-domain
   process — never from this multi-domain bench), replays a hot/cold
   request mix against 1, 2 and 4 shards, and reports cold vs cached
   p50/p99 latency plus pipelined hot throughput. *)

let fleet_rows : (string * Analysis.Json.t) list ref = ref []

let cli_binary () =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "advisor_cli.exe"

type bconn = { bfd : Unix.file_descr; mutable bbuf : string }

let bconnect path =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { bfd = fd; bbuf = "" }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      Unix.sleepf 0.02;
      go ()
  in
  go ()

let bsend c line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write c.bfd data !off (len - !off)
  done

let bread_line c =
  let rec go () =
    match String.index_opt c.bbuf '\n' with
    | Some i ->
      let line = String.sub c.bbuf 0 i in
      c.bbuf <- String.sub c.bbuf (i + 1) (String.length c.bbuf - i - 1);
      line
    | None ->
      let b = Bytes.create 65536 in
      let n = Unix.read c.bfd b 0 (Bytes.length b) in
      if n = 0 then failwith "fleet bench: daemon closed the connection";
      c.bbuf <- c.bbuf ^ Bytes.sub_string b 0 n;
      go ()
  in
  go ()

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pct values p =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0. else a.(min (n - 1) (p * n / 100))

let serve_fleet_bench () =
  heading "Serve fleet: cached-result latency and shard scaling";
  let cli = cli_binary () in
  if not (Sys.file_exists cli) then
    Printf.printf "  skipped: %s not found (run from the dune build tree)\n%!"
      cli
  else begin
    fleet_rows := [];
    (* the hot/cold keyspace: two linear-scaling apps on two
       architectures — cheap enough that cold passes at several scales
       stay in seconds (hotspot/lavaMD grow quadratically or worse) *)
    let apps =
      List.filter
        (fun a -> Workloads.Registry.find_opt a <> None)
        [ "nn"; "bfs" ]
    in
    let keys =
      List.concat_map
        (fun app -> List.map (fun arch -> (app, arch)) [ "kepler"; "pascal" ])
        apps
    in
    let req i (app, arch) =
      Printf.sprintf
        {|{"id": %d, "op": "profile", "app": "%s", "arch": "%s"}|} i app arch
    in
    (* PR 5 baseline: the same hot request against a --no-cache daemon
       recomputes the simulation every time (warm compile/decode
       caches — exactly the pre-result-cache serving cost) *)
    (let path =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "advisor-fleetbench-%d-base.sock" (Unix.getpid ()))
     in
     let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
     let pid =
       Unix.create_process cli
         [| cli; "serve"; "--socket"; path; "--workers"; "2"; "--no-cache" |]
         devnull devnull devnull
     in
     Unix.close devnull;
     Fun.protect
       ~finally:(fun () ->
         (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
         ignore (Unix.waitpid [] pid);
         try Unix.unlink path with Unix.Unix_error _ -> ())
       (fun () ->
         let c = bconnect path in
         let rt i =
           let t0 = Unix.gettimeofday () in
           bsend c (req i (List.hd keys));
           ignore (bread_line c);
           (Unix.gettimeofday () -. t0) *. 1000.
         in
         ignore (rt 0) (* warm the compile/decode caches *);
         let samples = List.init 10 rt in
         Unix.close c.bfd;
         let p50 = pct samples 50 in
         Printf.printf "  no-cache baseline: repeated profile p50 %7.1f ms\n%!"
           p50;
         let open Analysis.Json in
         fleet_rows :=
           ("baseline_no_cache_hot_ms_p50", Float p50) :: !fleet_rows));
    List.iter
      (fun shards ->
        let path =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "advisor-fleetbench-%d-%d.sock" (Unix.getpid ())
               shards)
        in
        let argv =
          Array.append
            [| cli; "serve"; "--socket"; path; "--workers"; "2" |]
            (if shards > 1 then [| "--shards"; string_of_int shards |]
             else [||])
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        let pid = Unix.create_process cli argv devnull devnull devnull in
        Unix.close devnull;
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            try Unix.unlink path with Unix.Unix_error _ -> ())
          (fun () ->
            let c = bconnect path in
            (* readiness: every shard answering health checks *)
            let deadline = Unix.gettimeofday () +. 30.0 in
            let rec ready () =
              let ok =
                if shards > 1 then begin
                  bsend c {|{"id": "r", "op": "fleet"}|};
                  let l = bread_line c in
                  (not (contains_sub l "starting"))
                  && not (contains_sub l "dead")
                end
                else begin
                  bsend c {|{"id": "r", "op": "ping"}|};
                  contains_sub (bread_line c) "pong"
                end
              in
              if not ok then
                if Unix.gettimeofday () < deadline then begin
                  Unix.sleepf 0.05;
                  ready ()
                end
                else failwith "fleet bench: shards never became ready"
            in
            ready ();
            let round_trip i k =
              let t0 = Unix.gettimeofday () in
              bsend c (req i k);
              ignore (bread_line c);
              (Unix.gettimeofday () -. t0) *. 1000.
            in
            (* cold pass: every key once, nothing cached yet *)
            let cold = List.mapi round_trip keys in
            (* hot passes: the same keys, now served from the cache *)
            let hot = ref [] in
            for _round = 1 to 5 do
              hot := List.mapi round_trip keys @ !hot
            done;
            (* pipelined cold throughput: distinct compute-bound keys
               (scales past the defaults) spread across the shards by
               the consistent hash — the fleet's scaling axis on
               multi-core hosts *)
            let cold_keys =
              List.concat_map
                (fun (app, arch) ->
                  List.map (fun scale -> (app, arch, scale)) [ 3; 4 ])
                keys
            in
            let t0 = Unix.gettimeofday () in
            List.iteri
              (fun i (app, arch, scale) ->
                bsend c
                  (Printf.sprintf
                     {|{"id": %d, "op": "profile", "app": "%s", "arch": "%s", "scale": %d}|}
                     i app arch scale))
              cold_keys;
            List.iter (fun _ -> ignore (bread_line c)) cold_keys;
            let cold_req_s =
              float_of_int (List.length cold_keys)
              /. (Unix.gettimeofday () -. t0)
            in
            (* pipelined hot throughput *)
            let n_pipe = 128 in
            let t0 = Unix.gettimeofday () in
            for i = 0 to n_pipe - 1 do
              bsend c (req i (List.nth keys (i mod List.length keys)))
            done;
            for _ = 1 to n_pipe do
              ignore (bread_line c)
            done;
            let req_s = float_of_int n_pipe /. (Unix.gettimeofday () -. t0) in
            Unix.close c.bfd;
            let cold50 = pct cold 50
            and hot50 = pct !hot 50
            and hot99 = pct !hot 99 in
            Printf.printf
              "  %d shard(s): cold p50 %7.1f ms | hot p50 %6.3f ms  p99 %6.3f \
               ms | hot %8.0f req/s | cold pipelined %5.2f req/s\n%!"
              shards cold50 hot50 hot99 req_s cold_req_s;
            let open Analysis.Json in
            fleet_rows :=
              ( string_of_int shards,
                Obj
                  [ ("shards", Int shards); ("cold_ms_p50", Float cold50);
                    ("hot_ms_p50", Float hot50); ("hot_ms_p99", Float hot99);
                    ("hot_req_per_s", Float req_s);
                    ("cold_pipelined_req_per_s", Float cold_req_s) ] )
              :: !fleet_rows))
      [ 1; 2; 4 ]
  end

(* ----- staticfast: IR-only estimator vs the simulator -----

   Calibration of the static tier: for every registry workload, the
   estimator's memory-divergence degree, branch-divergence percentage
   and no-reuse fraction against the instrumented simulation's, plus
   the latency of each path.  The error columns are what the
   calibration test pins (with recorded tolerances). *)

let staticfast_rows : (string * Analysis.Json.t) list ref = ref []

let staticfast () =
  heading "Static fast path: estimate vs simulation (Kepler, 128B lines)";
  let arch = kepler16 () in
  (* First estimates pay the (memoized) frontend; warm it so the
     latency column measures the estimator itself, which is what the
     serve intake path runs on a warm daemon. *)
  List.iter
    (fun (w : Workloads.Common.t) -> ignore (Advisor.estimate ~arch w))
    Workloads.Registry.all;
  staticfast_rows := [];
  Printf.printf "%-10s %8s %9s %8s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s\n"
    "App" "est ms" "sim ms" "speedup" "deg^" "deg" "err" "br%^" "br%" "err"
    "nr^" "nr" "err";
  List.iter
    (fun (w : Workloads.Common.t) ->
      let t0 = Unix.gettimeofday () in
      let e = Advisor.estimate ~arch w in
      let est_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let t1 = Unix.gettimeofday () in
      let s = Advisor.profile ~arch w in
      let sim_ms = (Unix.gettimeofday () -. t1) *. 1000. in
      Hashtbl.replace sessions w.name s;
      let md = Advisor.mem_divergence ~line_size:128 s in
      let bd = Advisor.branch_divergence s in
      let rd = Advisor.reuse_distance s in
      let sim_deg = md.Analysis.Mem_divergence.degree in
      let sim_br = Analysis.Branch_divergence.percent bd in
      let sim_nr = Analysis.Reuse_distance.no_reuse_fraction rd in
      let module E = Passes.Estimate in
      let deg_err = Float.abs (e.E.degree -. sim_deg) in
      let br_err = Float.abs (e.E.branch_percent -. sim_br) in
      let nr_err = Float.abs (e.E.no_reuse_fraction -. sim_nr) in
      Printf.printf
        "%-10s %8.3f %9.1f %7.0fx | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f | \
         %6.2f %6.2f %6.2f\n%!"
        w.name est_ms sim_ms (sim_ms /. est_ms) e.E.degree sim_deg deg_err
        e.E.branch_percent sim_br br_err e.E.no_reuse_fraction sim_nr nr_err;
      let open Analysis.Json in
      staticfast_rows :=
        ( w.name,
          Obj
            [ ("estimate_ms", Float est_ms); ("simulate_ms", Float sim_ms);
              ("speedup", Float (sim_ms /. est_ms));
              ( "degree",
                Obj
                  [ ("estimated", Float e.E.degree); ("simulated", Float sim_deg);
                    ("abs_error", Float deg_err);
                    ( "confidence",
                      String (E.confidence_label e.E.degree_confidence) ) ] );
              ( "branch_percent",
                Obj
                  [ ("estimated", Float e.E.branch_percent);
                    ("simulated", Float sim_br); ("abs_error", Float br_err);
                    ( "confidence",
                      String (E.confidence_label e.E.branch_confidence) ) ] );
              ( "no_reuse_fraction",
                Obj
                  [ ("estimated", Float e.E.no_reuse_fraction);
                    ("simulated", Float sim_nr); ("abs_error", Float nr_err);
                    ( "confidence",
                      String (E.confidence_label e.E.reuse_confidence) ) ] ) ] )
        :: !staticfast_rows)
    Workloads.Registry.all

(* ----- tune: variant tournaments over the registry ----- *)

let tune_rows : (string * Analysis.Json.t) list ref = ref []

(* The standard sweep (CTA-width double/halve, half-bypassed warps,
   4x-unrolled loops) for every Table-2 app, through the same
   Tune.Evaluate engine the serve daemon's `evaluate` op runs. *)
let tune_bench () =
  heading "Tune: variant tournaments (bypass / block-size / unroll sweep)";
  let arch = kepler16 () in
  tune_rows := [];
  Printf.printf "%-10s %8s %-12s %8s %7s\n" "App" "variants" "best" "speedup"
    "secs";
  List.iter
    (fun (w : Workloads.Common.t) ->
      let t0 = Unix.gettimeofday () in
      let result = Tune.Sweep.run ~arch w in
      let secs = Unix.gettimeofday () -. t0 in
      let doc =
        match Obs.Jsonv.parse (Analysis.Json.to_string result) with
        | Ok v -> v
        | Error _ -> Obs.Jsonv.Null
      in
      let n_variants =
        match Obs.Jsonv.member "variants" doc with
        | Some (Obs.Jsonv.Arr vs) -> List.length vs
        | _ -> 0
      in
      let best_name, best_speedup =
        match Obs.Jsonv.member "ranking" doc with
        | Some (Obs.Jsonv.Arr (top :: _)) ->
          ( Option.value
              (Option.bind (Obs.Jsonv.member "name" top) Obs.Jsonv.to_string_opt)
              ~default:"?",
            Option.value
              (Option.bind
                 (Obs.Jsonv.member "speedup_vs_baseline" top)
                 Obs.Jsonv.to_float_opt)
              ~default:Float.nan )
        | _ -> ("?", Float.nan)
      in
      Printf.printf "%-10s %8d %-12s %7.3fx %7.2f\n%!" w.name n_variants
        best_name best_speedup secs;
      let open Analysis.Json in
      tune_rows :=
        ( w.name,
          Obj
            [ ("variants", Int n_variants); ("best", String best_name);
              ("best_speedup", Float best_speedup); ("seconds", Float secs) ] )
        :: !tune_rows)
    Workloads.Registry.all

(* ----- fleet telemetry costs: snapshot, merge, exposition render ----- *)

let telemetry_rows : (string * Analysis.Json.t) list ref = ref []

let telemetry () =
  section "Telemetry costs (registry snapshot, cross-shard merge, exposition)";
  (* a registry shaped like a busy shard: per-op histograms + counters *)
  let ops = [ "ping"; "list"; "profile"; "profile_fast"; "check"; "bypass" ] in
  List.iter
    (fun op ->
      let h = Obs.Metrics.histogram (Printf.sprintf "bench.tele.op.%s.ns" op) in
      for i = 1 to 10_000 do
        Obs.Metrics.observe h (i * 997)
      done;
      Obs.Metrics.add
        (Obs.Metrics.counter (Printf.sprintf "bench.tele.%s.count" op))
        (op |> String.length))
    ops;
  let time_n n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6
  in
  let snap_us = time_n 200 Obs.Metrics.snapshot in
  let snap = Obs.Metrics.snapshot () in
  Printf.printf "registry snapshot (%d instruments): %8.1f us\n"
    (List.length snap) snap_us;
  (* merging 8 shard snapshots, the supervisor's aggregation unit *)
  let shards = List.init 8 (fun _ -> snap) in
  let merge_us = time_n 100 (fun () -> Obs.Metrics.merge_snapshots shards) in
  Printf.printf "merge of 8 shard snapshots:     %8.1f us\n" merge_us;
  let prom_us = time_n 100 (fun () -> Obs.Metrics.to_prometheus ~snap ()) in
  let prom_lines =
    List.length (String.split_on_char '\n' (Obs.Metrics.to_prometheus ~snap ()))
  in
  Printf.printf "prometheus render (%4d lines):  %8.1f us\n" prom_lines prom_us;
  let h =
    match List.assoc "bench.tele.op.profile.ns" snap with
    | Obs.Metrics.Histogram h -> h
    | _ -> assert false
  in
  let pct_us =
    time_n 10_000 (fun () -> Obs.Metrics.percentile h 0.99)
  in
  Printf.printf "p99 from log2 buckets:          %8.3f us\n" pct_us;
  telemetry_rows :=
    [ ("snapshot_us", Analysis.Json.Float snap_us);
      ("merge8_us", Analysis.Json.Float merge_us);
      ("prometheus_us", Analysis.Json.Float prom_us);
      ("percentile_us", Analysis.Json.Float pct_us) ]

(* ----- bank-conflict model: exactness and fidelity cost ----- *)

let bankconflict_rows : (string * Analysis.Json.t) list ref = ref []

let bankconflict () =
  section "Shared-memory bank conflicts (model exactness + fidelity cost)";
  bankconflict_rows := [];
  let arch = kepler16 () in
  (* (a) exactness: the microbenchmark degrees are known in closed form
     (stride 1 -> conflict-free, stride 32 -> 32-way on every access) *)
  Printf.printf "  %-14s %9s %7s %8s %11s\n" "micro" "accesses" "degree"
    "replays" "wasted-cyc";
  let micro_rows =
    List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        let session = Advisor.profile ~bankmodel:true ~arch w in
        let bc = Advisor.bank_conflict session in
        let { Analysis.Bank_conflict.shared_accesses; replays; wasted_cycles; _ }
            =
          bc
        in
        let degree = Analysis.Bank_conflict.max_degree bc in
        Printf.printf "  %-14s %9d %7d %8d %11d\n%!" name shared_accesses
          degree replays wasted_cycles;
        ( name,
          Analysis.Json.Obj
            [ ("shared_accesses", Analysis.Json.Int shared_accesses);
              ("max_degree", Analysis.Json.Int degree);
              ("replays", Analysis.Json.Int replays);
              ("wasted_cycles", Analysis.Json.Int wasted_cycles) ] ))
      Workloads.Registry.micro_names
  in
  (* (b) fidelity cost: simulator wall-clock with the bank model on vs
     off, on the smoke path of the shared-memory Table-2 apps.  The
     model adds only per-shared-access bank bookkeeping, so the budget
     is <10% (reported and baselined warn-only, never gated). *)
  let fidelity_apps = [ "backprop"; "nw" ] in
  let cost_rows =
    List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        let time bankmodel =
          let t0 = Unix.gettimeofday () in
          let cycles, _ = Advisor.run_native ~bankmodel ~arch w in
          (cycles, Unix.gettimeofday () -. t0)
        in
        (* warm the compile/decode caches so neither side pays them *)
        ignore (time false);
        let cycles_off, off_s = time false in
        let cycles_on, on_s = time true in
        let overhead = (on_s -. off_s) /. off_s *. 100. in
        Printf.printf
          "  %-10s off %9d cyc %6.2fs   on %9d cyc %6.2fs   wall %+6.1f%%\n%!"
          name cycles_off off_s cycles_on on_s overhead;
        if overhead > 10. then
          Printf.printf "  WARN: %s bank-model fidelity cost %.1f%% > 10%%\n%!"
            name overhead;
        ( name,
          Analysis.Json.Obj
            [ ("cycles_off", Analysis.Json.Int cycles_off);
              ("cycles_on", Analysis.Json.Int cycles_on);
              ("wall_overhead_pct", Analysis.Json.Float overhead) ] ))
      fidelity_apps
  in
  bankconflict_rows :=
    [ ("micro", Analysis.Json.Obj micro_rows);
      ("fidelity", Analysis.Json.Obj cost_rows) ]

let all_sections =
  [ ("table1", table1); ("table2", table2); ("fig4", fig4); ("fig5", fig5);
    ("table3", table3); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("vertical", vertical);
    ("ablation", ablation); ("serve", serve_bench);
    ("servefleet", serve_fleet_bench); ("staticfast", staticfast);
    ("tune", tune_bench); ("telemetry", telemetry);
    ("bankconflict", bankconflict); ("bech", bechamel); ("smoke", smoke) ]

let () =
  (* `--json FILE` may appear anywhere among the section names *)
  let rec split_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | "--json" :: [] -> failwith "--json needs a file argument"
    | x :: rest -> split_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_file, names = split_json [] (List.tl (Array.to_list Sys.argv)) in
  (* `OBS_TRACE=file` turns on self-profiling for the whole run and
     writes a Chrome trace of the harness itself on exit *)
  let obs_trace_file = Sys.getenv_opt "OBS_TRACE" in
  if obs_trace_file <> None then Obs.Trace.enable ();
  (* `--smoke` is shorthand for the smoke section alone *)
  let names =
    List.map (function "--smoke" -> "smoke" | n -> n) names
  in
  let requested =
    if names = [] then
      (* [smoke] duplicates work the full suite already does; keep the
         default run to the paper's sections *)
      List.filter (fun n -> n <> "smoke") (List.map fst all_sections)
    else names
  in
  Printf.printf "CUDAAdvisor reproduction benchmarks\n%!";
  let timings = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        Obs.Trace.with_span ~cat:"bench" ("bench." ^ name) f;
        timings := (name, Unix.gettimeofday () -. t0) :: !timings
      | None ->
        Printf.eprintf "unknown section %s (available: %s)\n" name
          (String.concat ", " (List.map fst all_sections)))
    requested;
  (match obs_trace_file with
  | Some f ->
    Obs.Trace.export_chrome_to_file f;
    Printf.printf "\nwrote Chrome trace to %s\n%!" f
  | None -> ());
  match json_file with
  | None -> ()
  | Some file ->
    let open Analysis.Json in
    (* both cache blocks read the Obs registry now; the keys are kept
       for scripts that already consume them *)
    let hits, misses = Advisor.compile_cache_stats () in
    let dhits, dmisses = Ptx.Decode.cache_stats () in
    let metrics =
      Obj
        (List.map
           (fun (name, v) ->
             match v with
             | Obs.Metrics.Counter i -> (name, Int i)
             | Obs.Metrics.Gauge g -> (name, Float g)
             | Obs.Metrics.Histogram h ->
               ( name,
                 Obj
                   [ ("count", Int h.count); ("sum", Int h.sum);
                     ("max", Int h.max_value); ("mean", Float h.mean);
                     ( "buckets",
                       Obj
                         (List.map
                            (fun (b, c) -> (Obs.Metrics.bucket_label b, Int c))
                            h.filled) ) ] ))
           (Obs.Metrics.snapshot ()))
    in
    let doc =
      Obj
        [
          ("sections",
           Obj (List.rev_map (fun (n, s) -> (n, Float s)) !timings));
          ("bechamel_ns_per_run",
           Obj (List.map (fun (n, t) -> (n, Float t)) (List.sort compare !bech_rows)));
          ("serve_fleet", Obj (List.rev !fleet_rows));
          ("staticfast", Obj (List.rev !staticfast_rows));
          ("tune", Obj (List.rev !tune_rows));
          ("telemetry", Obj !telemetry_rows);
          ("bankconflict", Obj !bankconflict_rows);
          ("compile_cache", Obj [ ("hits", Int hits); ("misses", Int misses) ]);
          ("decode_cache", Obj [ ("hits", Int dhits); ("misses", Int dmisses) ]);
          ("metrics", metrics);
          ("pool_domains", Int (Domain.recommended_domain_count ()));
        ]
    in
    let oc = open_out file in
    output_string oc (to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote %s\n%!" file
