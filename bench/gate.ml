(* CI bench-regression gate.

     gate.exe BASELINE.json CURRENT.json [--summary FILE]
              [--tolerance-scale X]

   Compares the bench harness's `--json` output against the committed
   baseline (BENCH_BASELINE.json at the repo root) and exits non-zero
   when a *gated* metric regressed beyond its tolerance:

     - bechamel_ns_per_run."cudaadvisor/table1-simulate-nn"
       (the simulator hot loop)                      : > 25%
     - serve_fleet."1".hot_ms_p50
       (the daemon's cached-answer hot path)         : > 25% + 0.05 ms

   The absolute slack keeps sub-millisecond metrics from tripping on
   scheduler jitter; `--tolerance-scale` (or the GATE_TOLERANCE_SCALE
   environment variable) multiplies every relative tolerance — CI
   runners have noisier neighbours than the machine the baseline was
   recorded on.

   Every other shared numeric leaf under sections / bechamel_ns_per_run
   / serve_fleet / telemetry / bankconflict is compared too, but only *reported*
   (warn at > 50%): those either measure wall-clock of whole sections
   (dominated by machine speed) or are covered by their own tests.
   The full comparison is written as a Markdown table to --summary
   (CI passes $GITHUB_STEP_SUMMARY) and echoed to stdout. *)

module Jsonv = Obs.Jsonv

type gated = {
  g_path : string list;
  g_tolerance : float; (* relative, e.g. 0.25 = +25% *)
  g_slack : float; (* absolute headroom in the metric's own unit *)
  g_unit : string;
}

let gated_metrics =
  [ { g_path = [ "bechamel_ns_per_run"; "cudaadvisor/table1-simulate-nn" ];
      g_tolerance = 0.25;
      g_slack = 0.0;
      g_unit = "ns/run" };
    { g_path = [ "serve_fleet"; "1"; "hot_ms_p50" ];
      g_tolerance = 0.25;
      g_slack = 0.05;
      g_unit = "ms" } ]

(* Numeric leaves under the comparable top-level sections, as
   (dotted-path, value); lower is better for every one of them. *)
let comparable_roots =
  [ "sections"; "bechamel_ns_per_run"; "serve_fleet"; "telemetry";
    "bankconflict" ]

let leaves (doc : Jsonv.t) =
  let rec go prefix v acc =
    match v with
    | Jsonv.Num f -> (List.rev prefix, f) :: acc
    | Jsonv.Obj fields ->
      List.fold_left (fun acc (k, v) -> go (k :: prefix) v acc) acc fields
    | _ -> acc
  in
  match doc with
  | Jsonv.Obj fields ->
    List.concat_map
      (fun (k, v) ->
        if List.mem k comparable_roots then List.rev (go [ k ] v []) else [])
      fields
  | _ -> []

let dotted path = String.concat "." path

let read_json path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Jsonv.parse s with
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "gate: %s: invalid JSON: %s\n" path msg;
    exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split pos opts = function
    | "--summary" :: f :: rest -> split pos (("summary", f) :: opts) rest
    | "--tolerance-scale" :: x :: rest -> split pos (("scale", x) :: opts) rest
    | x :: rest -> split (x :: pos) opts rest
    | [] -> (List.rev pos, opts)
  in
  let pos, opts = split [] [] args in
  let baseline_file, current_file =
    match pos with
    | [ b; c ] -> (b, c)
    | _ ->
      Printf.eprintf
        "usage: gate.exe BASELINE.json CURRENT.json [--summary FILE] \
         [--tolerance-scale X]\n";
      exit 2
  in
  let scale =
    match
      (List.assoc_opt "scale" opts, Sys.getenv_opt "GATE_TOLERANCE_SCALE")
    with
    | Some x, _ | None, Some x -> (
      match float_of_string_opt x with
      | Some f when f > 0. -> f
      | _ ->
        Printf.eprintf "gate: bad tolerance scale %S\n" x;
        exit 2)
    | None, None -> 1.0
  in
  let baseline = read_json baseline_file in
  let current = read_json current_file in
  let base_leaves = leaves baseline in
  let cur_leaves = leaves current in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "### Bench regression gate\n\n\
        baseline `%s` vs current `%s` (tolerance scale %.2f)\n\n\
        | metric | baseline | current | delta | budget | status |\n\
        | --- | ---: | ---: | ---: | ---: | --- |\n"
       baseline_file current_file scale);
  let failures = ref [] in
  let row ~path ~unit ~base ~cur ~budget ~status =
    Buffer.add_string buf
      (Printf.sprintf "| `%s` | %.3f %s | %.3f %s | %+.1f%% | +%.0f%% | %s |\n"
         (dotted path) base unit cur unit
         (100. *. ((cur -. base) /. base))
         (100. *. budget) status)
  in
  (* the gated metrics: absent from current = fail (a gate that cannot
     see its metric must not silently pass) *)
  List.iter
    (fun g ->
      match
        (List.assoc_opt g.g_path base_leaves, List.assoc_opt g.g_path cur_leaves)
      with
      | Some base, Some cur ->
        let tolerance = g.g_tolerance *. scale in
        let limit = (base *. (1. +. tolerance)) +. g.g_slack in
        if cur > limit then begin
          failures :=
            Printf.sprintf "%s: %.3f -> %.3f %s (limit %.3f)" (dotted g.g_path)
              base cur g.g_unit limit
            :: !failures;
          row ~path:g.g_path ~unit:g.g_unit ~base ~cur ~budget:tolerance
            ~status:"**FAIL**"
        end
        else
          row ~path:g.g_path ~unit:g.g_unit ~base ~cur ~budget:tolerance
            ~status:"ok (gated)"
      | base, cur ->
        let missing = if cur = None then current_file else baseline_file in
        failures :=
          Printf.sprintf "%s: missing from %s" (dotted g.g_path) missing
          :: !failures;
        Buffer.add_string buf
          (Printf.sprintf "| `%s` | %s | %s | - | - | **FAIL** (missing) |\n"
             (dotted g.g_path)
             (match base with Some b -> Printf.sprintf "%.3f" b | None -> "?")
             (match cur with Some c -> Printf.sprintf "%.3f" c | None -> "?")))
    gated_metrics;
  (* everything else shared: informational.  Skip leaves where lower is
     not better (throughputs) or that are configuration echoes. *)
  let is_gated path = List.exists (fun g -> g.g_path = path) gated_metrics in
  let not_a_cost path =
    match List.rev path with
    | last :: _ ->
      last = "shards" || last = "variants"
      || (String.length last > 10
          && String.sub last (String.length last - 10) 10 = "_req_per_s")
    | [] -> true
  in
  List.iter
    (fun (path, base) ->
      if (not (is_gated path)) && not (not_a_cost path) then
        match List.assoc_opt path cur_leaves with
        | None -> ()
        | Some cur when base = 0. -> ignore cur
        | Some cur ->
          let budget = 0.50 *. scale in
          let status =
            if cur > base *. (1. +. budget) then "warn" else "ok"
          in
          row ~path ~unit:"" ~base ~cur ~budget ~status)
    base_leaves;
  (match !failures with
  | [] -> Buffer.add_string buf "\nGate passed.\n"
  | fs ->
    Buffer.add_string buf
      (Printf.sprintf "\n**Gate FAILED** (%d metric(s)):\n" (List.length fs));
    List.iter
      (fun f -> Buffer.add_string buf (Printf.sprintf "- %s\n" f))
      (List.rev fs));
  let report = Buffer.contents buf in
  print_string report;
  (match List.assoc_opt "summary" opts with
  | None -> ()
  | Some file ->
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file
    in
    output_string oc report;
    close_out oc);
  if !failures <> [] then exit 1
